"""NumPy reference backend (default) and the frozen ``seed`` baseline.

``numpy`` is the tuned vectorized implementation every other backend must
agree with:

* scatter-adds are :func:`np.bincount` reductions instead of ``np.add.at``
  (same element order per target, so the sums are bit-identical — asserted
  in the tests — while avoiding the ufunc.at inner-loop overhead);
* the density/force pair searches run over the grid's *compacted* candidate
  list (``r < cell`` once, instead of re-filtering the full 27-stencil list
  every sweep);
* repeated kernel-size sweeps only re-evaluate targets whose h actually
  changed (the converged majority keeps its cached partial sum, which is
  exactly the value a full recompute would produce);
* the gravity source-axis tile is sized from a temporary-buffer budget
  (``REPRO_GRAV_CHUNK`` / ``REPRO_GRAV_TEMP_MB``) instead of a fixed 4096.

``seed`` reproduces the pre-backend kernels exactly (``np.add.at`` scatter,
full candidate re-filtering, fixed 4096-source chunks): it exists so
``benchmarks/bench_backend_kernels.py`` can report speedups against the
seed-state cost profile from inside the same harness.
"""

from __future__ import annotations

import numpy as np

from repro.accel.backends.base import DensityGatherState, KernelBackend
from repro.sph.neighbors import NeighborGrid
from repro.util.constants import GRAV_CONST


class _NumpyDensityGather(DensityGatherState):
    """Candidate-list gather with changed-target sweep reuse."""

    #: Use the r<cell compacted candidates and skip unchanged targets.
    compact = True
    active_set = True

    def __init__(self, grid: NeighborGrid, pos: np.ndarray, kernel) -> None:
        self.kernel = kernel
        self.n = len(pos)
        if self.compact:
            self.ci, self.cj, self.cr = grid.compact_self_pairs()
        else:
            self.ci, self.cj, self.cr = grid.self_pairs()
        self._h_prev: np.ndarray | None = None
        self._wsum: np.ndarray | None = None

    def weight_sum(self, h: np.ndarray) -> np.ndarray:
        i, r = self.ci, self.cr
        if not self.active_set or self._h_prev is None:
            keep = r < h[i]
            ii = i[keep]
            w = self.kernel.value(r[keep], h[ii])
            wsum = np.bincount(ii, weights=w, minlength=self.n)
        else:
            changed = h != self._h_prev
            if not changed.any():
                return self._wsum.copy()
            # Every candidate of a changed target is recomputed in the same
            # order a full sweep would visit it, so the partial sums match a
            # cold evaluation bit-for-bit; unchanged targets keep theirs.
            sub = changed[i]
            i_s, r_s = i[sub], r[sub]
            keep = r_s < h[i_s]
            ii = i_s[keep]
            w = self.kernel.value(r_s[keep], h[ii])
            upd = np.bincount(ii, weights=w, minlength=self.n)
            wsum = self._wsum.copy()
            wsum[changed] = upd[changed]
        if self.active_set:
            self._h_prev = h.copy()
            self._wsum = wsum.copy()
        return wsum

    def finalize(
        self, h: np.ndarray, mass: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        i, j, r = self.ci, self.cj, self.cr
        keep = r < h[i]
        ii, jj, rr = i[keep], j[keep], r[keep]
        w = self.kernel.value(rr, h[ii])
        dens = np.bincount(ii, weights=mass[jj] * w, minlength=self.n)
        dwdh = self.kernel.dvalue_dh(rr, h[ii])
        drho_dh = np.bincount(ii, weights=mass[jj] * dwdh, minlength=self.n)
        counts = np.bincount(ii, minlength=self.n)
        return dens, drho_dh, counts, (ii, jj, rr)


class _SeedDensityGather(_NumpyDensityGather):
    compact = False
    active_set = False


class NumpyBackend(KernelBackend):
    """The vectorized reference implementation (default backend)."""

    name = "numpy"
    _gather_cls = _NumpyDensityGather

    # ------------------------------------------------------------- gravity
    def _chunk_for(self, n_targets: int) -> int:
        from repro.gravity.kernels import grav_chunk_size

        return grav_chunk_size(n_targets)

    def grav_tile(
        self,
        target_pos: np.ndarray,
        target_eps: np.ndarray,
        source_pos: np.ndarray,
        source_mass: np.ndarray,
        source_eps: np.ndarray,
        exclude_self: bool = False,
        mixed: bool = False,
        g: float = GRAV_CONST,
    ) -> np.ndarray:
        if mixed:
            return self._grav_tile_mixed(
                target_pos, target_eps, source_pos, source_mass, source_eps,
                exclude_self, g,
            )
        tp = np.asarray(target_pos, dtype=np.float64)
        te = np.asarray(target_eps, dtype=np.float64)
        sp = np.asarray(source_pos, dtype=np.float64)
        sm = np.asarray(source_mass, dtype=np.float64)
        se = np.asarray(source_eps, dtype=np.float64)
        acc = np.zeros_like(tp)
        chunk = self._chunk_for(len(tp))
        for s0 in range(0, len(sp), chunk):
            s1 = min(s0 + chunk, len(sp))
            d = tp[:, None, :] - sp[None, s0:s1, :]              # (n_t, c, 3)
            r2 = np.einsum("ijk,ijk->ij", d, d)
            soft2 = te[:, None] ** 2 + se[None, s0:s1] ** 2
            denom = (r2 + soft2) ** 1.5
            w = sm[None, s0:s1] / np.maximum(denom, 1e-300)
            if exclude_self:
                w = np.where(r2 <= 0.0, 0.0, w)
            acc -= g * np.einsum("ij,ijk->ik", w, d)
        return acc

    def _grav_tile_mixed(
        self, target_pos, target_eps, source_pos, source_mass, source_eps,
        exclude_self, g,
    ) -> np.ndarray:
        # Positions shift to the target-group centroid and drop to float32;
        # accumulation and the result stay float64 (Sec. 4.3).
        tp = np.asarray(target_pos, dtype=np.float64)
        origin = tp.mean(axis=0)
        tp32 = (tp - origin).astype(np.float32)
        sp32 = (np.asarray(source_pos, dtype=np.float64) - origin).astype(np.float32)
        te32 = np.asarray(target_eps, dtype=np.float32)
        sm32 = np.asarray(source_mass, dtype=np.float32)
        se32 = np.asarray(source_eps, dtype=np.float32)
        acc = np.zeros_like(tp)
        chunk = self._chunk_for(len(tp))
        for s0 in range(0, len(sp32), chunk):
            s1 = min(s0 + chunk, len(sp32))
            d = tp32[:, None, :] - sp32[None, s0:s1, :]
            r2 = np.einsum("ijk,ijk->ij", d, d)
            soft2 = te32[:, None] ** 2 + se32[None, s0:s1] ** 2
            denom = (r2 + soft2) ** np.float32(1.5)
            w = sm32[None, s0:s1] / np.maximum(denom, np.float32(1e-30))
            if exclude_self:
                w = np.where(r2 <= np.float32(0.0), np.float32(0.0), w)
            acc -= g * np.einsum("ij,ijk->ik", w, d).astype(np.float64)
        return acc

    # ------------------------------------------------------------- density
    def density_gather(self, grid, pos: np.ndarray, kernel) -> DensityGatherState:
        return self._gather_cls(grid, pos, kernel)

    # --------------------------------------------------------- hydro force
    def _half_pairs(
        self, pos: np.ndarray, h: np.ndarray, grid: NeighborGrid | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Each unordered pair with r < max(h_i, h_j) exactly once."""
        r_max = float(h.max())
        if grid is None or not grid.covers(r_max) or grid.n_points != len(pos):
            grid = NeighborGrid.build(pos, r_max)
        i, j, r = grid.compact_self_pairs()
        keep = (r < np.maximum(h[i], h[j])) & (i < j)
        return i[keep], j[keep], r[keep]

    @staticmethod
    def _scatter_add_pairs(
        n: int, i: np.ndarray, j: np.ndarray, w_i: np.ndarray, w_j: np.ndarray,
        dvec: np.ndarray,
    ) -> np.ndarray:
        """acc[i] += w_i * dvec, acc[j] += w_j * dvec via bincount reduction.

        One bincount over the concatenated endpoints accumulates each
        target's terms in exactly the order the sequential ``np.add.at``
        pair of the seed kernels visited them, so the result is
        bit-identical — only the ufunc.at inner-loop overhead is gone.
        """
        idx = np.concatenate([i, j])
        acc = np.empty((n, 3))
        for ax in range(3):
            w = np.concatenate([w_i * dvec[:, ax], w_j * dvec[:, ax]])
            acc[:, ax] = np.bincount(idx, weights=w, minlength=n)
        return acc

    def hydro_force_pairs(
        self,
        pos: np.ndarray,
        vel: np.ndarray,
        mass: np.ndarray,
        h: np.ndarray,
        dens: np.ndarray,
        pres: np.ndarray,
        csnd: np.ndarray,
        omega: np.ndarray,
        balsara: np.ndarray | None,
        alpha_visc: float,
        beta_visc: float,
        kernel,
        grid=None,
        pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        n = len(pos)
        dens_safe = np.maximum(dens, 1e-300)
        if pairs is not None:
            i, j, r = pairs
        else:
            i, j, r = self._half_pairs(pos, h, grid)
        if len(i) == 0:
            return np.zeros((n, 3)), np.zeros(n), csnd.copy(), (i, j, r)

        dvec = pos[i] - pos[j]
        vvec = vel[i] - vel[j]
        vdotr = np.einsum("ij,ij->i", vvec, dvec)

        gf_i = kernel.grad_factor(r, h[i])   # (1/r) dW/dr at h_i
        gf_j = kernel.grad_factor(r, h[j])
        gf_bar = 0.5 * (gf_i + gf_j)

        # --- artificial viscosity ----------------------------------------
        h_bar = 0.5 * (h[i] + h[j])
        rho_bar = 0.5 * (dens_safe[i] + dens_safe[j])
        c_bar = 0.5 * (csnd[i] + csnd[j])
        mu = h_bar * vdotr / (r**2 + 0.01 * h_bar**2)
        mu = np.where(vdotr < 0.0, mu, 0.0)  # only approaching pairs dissipate
        fb = 0.5 * (balsara[i] + balsara[j]) if balsara is not None else 1.0
        visc = fb * (-alpha_visc * c_bar * mu + beta_visc * mu**2) / rho_bar

        # --- pressure gradient -------------------------------------------
        p_term_i = pres[i] / (omega[i] * dens_safe[i] ** 2)
        p_term_j = pres[j] / (omega[j] * dens_safe[j] ** 2)
        scal = p_term_i * gf_i + p_term_j * gf_j + visc * gf_bar
        acc = self._scatter_add_pairs(n, i, j, -mass[j] * scal, mass[i] * scal, dvec)

        # --- energy equation ---------------------------------------------
        du_visc = 0.5 * visc * vdotr * gf_bar
        du_dt = np.bincount(
            i, weights=mass[j] * (p_term_i * vdotr * gf_i + du_visc), minlength=n
        )
        du_dt += np.bincount(
            j, weights=mass[i] * (p_term_j * vdotr * gf_j + du_visc), minlength=n
        )

        # --- signal velocity (Monaghan 1997) -----------------------------
        w_rel = np.where(r > 0, vdotr / np.maximum(r, 1e-300), 0.0)
        vsig_pair = csnd[i] + csnd[j] - 3.0 * np.minimum(w_rel, 0.0)
        v_signal = csnd.copy()
        np.maximum.at(v_signal, i, vsig_pair)
        np.maximum.at(v_signal, j, vsig_pair)
        return acc, du_dt, v_signal, (i, j, r)


class SeedBackend(NumpyBackend):
    """The seed-state kernels, frozen for benchmarking.

    ``np.add.at`` scatter, full candidate re-filtering each sweep, fixed
    4096-source gravity chunks — the exact cost profile of the repository
    before the backend registry existed.  Physics-identical to ``numpy``
    (bit-for-bit on the hydro kernels).
    """

    name = "seed"
    _gather_cls = _SeedDensityGather

    def _chunk_for(self, n_targets: int) -> int:
        return 4096

    def _half_pairs(self, pos, h, grid):
        from repro.sph.neighbors import neighbor_pairs

        return neighbor_pairs(
            pos, h, mode="symmetric", include_self=False, grid=grid, half=True
        )

    @staticmethod
    def _scatter_add_pairs(n, i, j, w_i, w_j, dvec):
        acc = np.zeros((n, 3))
        for ax in range(3):
            np.add.at(acc[:, ax], i, w_i * dvec[:, ax])
            np.add.at(acc[:, ax], j, w_j * dvec[:, ax])
        return acc
