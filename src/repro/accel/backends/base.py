"""The compute-backend contract: the four hot kernels behind one interface.

A :class:`KernelBackend` owns the per-interaction arithmetic of the force
pipeline — exactly the kernels PIKG generates per ISA in the production code
(Sec. 3.5, Table 4):

* **gravity tile** (:meth:`KernelBackend.grav_tile`) — the dense
  (targets x sources) pairwise kernel used by direct summation *and* by the
  group-vs-interaction-list evaluation inside the tree walk;
* **density gather** (:meth:`KernelBackend.density_gather`) — the
  h-iteration inner loop of the SPH kernel-size solve: repeated
  sum-of-W sweeps over one neighbor binning, then the final density /
  grad-h sums;
* **hydro force scatter** (:meth:`KernelBackend.hydro_force_pairs`) — the
  half-pair momentum/energy/signal-velocity evaluation mirrored onto both
  pair endpoints.

Backends receive *built* spatial structures (a
:class:`~repro.sph.neighbors.NeighborGrid`, pair lists) and never own
caching or invalidation — that stays with
:class:`~repro.accel.SpatialIndex` / :class:`~repro.accel.ForceEngine`, so
every backend sees identical inputs and the physics is backend-independent
by construction (asserted by the parity tests in
``tests/accel/test_backends.py``).

A backend may implement only a subset natively and inherit the rest: the
``pikg`` backend, for instance, overrides the kernels its DSL expresses and
shares the reference implementation elsewhere.  Construction raises
:class:`BackendUnavailable` when a required toolchain (e.g. numba) is
missing; the registry in :mod:`repro.accel.backends` catches it and falls
back to ``numpy`` with a logged warning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.util.constants import GRAV_CONST

if TYPE_CHECKING:  # import only for annotations: backends stay leaf modules
    from repro.sph.kernels import SPHKernel
    from repro.sph.neighbors import NeighborGrid


class BackendUnavailable(RuntimeError):
    """Raised by a backend factory whose toolchain is not importable."""


class DensityGatherState:
    """Per-solve state of the density gather kernel.

    Built once per kernel-size solve over one neighbor binning; the h
    iteration calls :meth:`weight_sum` per sweep and :meth:`finalize` once
    after convergence.  Implementations may cache whatever per-candidate
    state (compacted pair lists, last-sweep kernel values) makes repeated
    sweeps cheap — positions are immutable for the lifetime of the object.
    """

    def weight_sum(self, h: np.ndarray) -> np.ndarray:
        """Sum_j W(r_ij, h_i) per target (gather, including self)."""
        raise NotImplementedError

    def finalize(
        self, h: np.ndarray, mass: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Final sums at the converged h: (dens, drho_dh, counts, pairs).

        ``pairs`` is the gather edge list (i, j, r) with r_ij < h_i
        including self — the list the velocity estimators and the step-7
        fast path reuse.
        """
        raise NotImplementedError


class KernelBackend:
    """Abstract backend: scalar/vector implementations of the hot kernels."""

    #: Registry name; subclasses override.
    name = "abstract"

    # ------------------------------------------------------------- gravity
    def grav_tile(
        self,
        target_pos: np.ndarray,
        target_eps: np.ndarray,
        source_pos: np.ndarray,
        source_mass: np.ndarray,
        source_eps: np.ndarray,
        exclude_self: bool = False,
        mixed: bool = False,
        g: float = GRAV_CONST,
    ) -> np.ndarray:
        """Pairwise gravity of all sources on all targets -> (n_t, 3).

        ``exclude_self`` masks zero-separation pairs; ``mixed`` evaluates in
        float32 relative to the target-group centroid with float64
        accumulation (the production mixed-precision scheme of Sec. 4.3).
        """
        raise NotImplementedError

    # ------------------------------------------------------------- density
    def density_gather(
        self, grid: NeighborGrid, pos: np.ndarray, kernel: SPHKernel
    ) -> DensityGatherState:
        """Per-solve gather state over one built neighbor grid.

        ``grid`` covers exactly ``pos`` and every search radius the solve
        will use (the caller rebuilds it when h outgrows the cell size).
        """
        raise NotImplementedError

    # --------------------------------------------------------- hydro force
    def hydro_force_pairs(
        self,
        pos: np.ndarray,
        vel: np.ndarray,
        mass: np.ndarray,
        h: np.ndarray,
        dens: np.ndarray,
        pres: np.ndarray,
        csnd: np.ndarray,
        omega: np.ndarray,
        balsara: np.ndarray | None,
        alpha_visc: float,
        beta_visc: float,
        kernel: SPHKernel,
        grid: NeighborGrid | None = None,
        pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Half-pair hydro kernel -> (acc, du_dt, v_signal, pairs).

        ``pairs`` supplies a previously returned half-pair list (i, j, r)
        and skips the search (the integrator's step-7 fast path); otherwise
        the search runs against ``grid``.  ``balsara`` is the per-particle
        viscosity limiter f_i (``None`` disables the switch).
        """
        raise NotImplementedError
