"""The per-step force pipeline: gravity + density + hydro behind one owner.

The engine owns a :class:`SpatialIndex` (cached neighbor grid + octree), the
persistent full-particle work buffers, and the cached per-step hydro state
(density result + half-pair edge list) that enables the step-7 fast path:
after cooling/feedback changed only ``u`` (and kicks changed ``v``), hydro
forces are re-evaluated on the *cached* pair lists — no neighbor search, no
h iteration, no grid or tree build.

See :mod:`repro.accel` for the invalidation contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.backends import get_backend
from repro.accel.index import SpatialIndex
from repro.fdps.interaction import InteractionCounter
from repro.fdps.particles import ParticleSet, ParticleType
from repro.gravity.kernels import accel_direct
from repro.gravity.treegrav import tree_accel
from repro.sph.density import DensityResult, compute_density, refresh_velocity_fields
from repro.sph.eos import pressure, sound_speed_from_density
from repro.sph.forces import compute_hydro_forces
from repro.util.timers import TimerRegistry


@dataclass
class _HydroCache:
    """Everything needed to re-evaluate hydro without a neighbor search."""

    n_total: int                 # particle count the cache was built for
    gas: np.ndarray              # global indices of the gas particles
    density: DensityResult       # final h / dens / omega + gather pair list
    force_pairs: tuple[np.ndarray, np.ndarray, np.ndarray]  # half pairs (i, j, r)


class ForceEngine:
    """Owns gravity + density + hydro evaluation with shared spatial caches.

    ``cfg`` is any object carrying the integrator's numerical switches
    (``theta``, ``n_g``, ``leaf_size``, ``n_ngb``, ``direct_gravity_below``,
    ``mixed_precision``, optionally ``backend``) — kept duck-typed so
    :mod:`repro.core` can pass its ``IntegratorConfig`` without an import
    cycle.  The compute backend is resolved once at construction
    (``cfg.backend`` > ``$REPRO_BACKEND`` > ``numpy``) and threaded through
    every kernel call, so single-rank and multi-rank paths hit identical
    kernels.
    """

    def __init__(
        self,
        cfg,
        timers: TimerRegistry | None = None,
        counter: InteractionCounter | None = None,
    ) -> None:
        self.cfg = cfg
        self.timers = timers or TimerRegistry()
        self.counter = counter
        self.index = SpatialIndex()
        self.backend = get_backend(getattr(cfg, "backend", None))
        self._hydro_cache: _HydroCache | None = None
        self._buffers_n = -1
        self._acc_buf: np.ndarray | None = None
        self._du_buf: np.ndarray | None = None
        self._vsig_buf: np.ndarray | None = None

    # ---------------------------------------------------------- invalidation
    def notify_positions_changed(self) -> None:
        """Coordinates moved (drift, SN-region replacement): spatial caches
        and pair lists are stale."""
        self.index.invalidate_positions()
        self._hydro_cache = None

    def notify_membership_changed(self) -> None:
        """Particles appeared/vanished/reordered (star formation, exchange)."""
        self.index.invalidate_all()
        self._hydro_cache = None

    @property
    def fast_path_available(self) -> bool:
        return self._hydro_cache is not None

    # -------------------------------------------------------------- buffers
    def _full_buffers(self, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Persistent (acc, du, vsig) work buffers, zeroed for this call."""
        if n != self._buffers_n:
            self._acc_buf = np.zeros((n, 3))
            self._du_buf = np.zeros(n)
            self._vsig_buf = np.zeros(n)
            self._buffers_n = n
        else:
            self._acc_buf.fill(0.0)
            self._du_buf.fill(0.0)
            self._vsig_buf.fill(0.0)
        return self._acc_buf, self._du_buf, self._vsig_buf

    # -------------------------------------------------------------- gravity
    def gravity(self, ps: ParticleSet, label: str) -> np.ndarray:
        """Self-gravity on all particles; at most one octree build per call
        (and zero when the cached tree is still valid)."""
        cfg = self.cfg
        with self.timers.measure(f"{label} Calc_Force", backend=self.backend.name):
            if len(ps) <= cfg.direct_gravity_below:
                return accel_direct(
                    ps.pos, ps.mass, ps.eps, counter=self.counter,
                    backend=self.backend,
                )
            tree = self.index.tree_for(ps.pos, ps.mass, leaf_size=cfg.leaf_size)
            res = tree_accel(
                ps.pos,
                ps.mass,
                ps.eps,
                theta=cfg.theta,
                n_g=cfg.n_g,
                leaf_size=cfg.leaf_size,
                counter=self.counter,
                mixed_precision=cfg.mixed_precision,
                tree=tree,
                backend=self.backend,
            )
            return res.acc


    def work_weights(self, ps: ParticleSet) -> np.ndarray:
        """Per-particle domain-decomposition weights: unit gravity work for
        everyone plus the Table-3-anchored hydro surcharge on gas particles
        (Sec. 5.2: the multisection minimizes summed gravity + hydro work)."""
        from repro.perf.costmodel import hydro_gravity_work_ratio

        w = np.ones(len(ps))
        w[ps.where_type(ParticleType.GAS)] += hydro_gravity_work_ratio()
        return w

    # ---------------------------------------------------------------- hydro
    def hydro(self, ps: ParticleSet, label: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full density + hydro-force pass on the gas.

        Returns (acc, du_dt, vsig) scattered to full-particle arrays,
        refreshes the gas SPH fields on ``ps``, and primes the fast-path
        cache (grid, gather pairs, half force pairs).

        The returned arrays are the engine's *persistent work buffers*:
        they are overwritten in place by the next :meth:`hydro` /
        :meth:`refresh_hydro` call.  ``.copy()`` them to retain a pass's
        values beyond that.
        """
        cfg = self.cfg
        gas = np.flatnonzero(ps.where_type(ParticleType.GAS))
        acc, du, vsig = self._full_buffers(len(ps))
        if gas.size < 2:
            self._hydro_cache = None
            return acc, du, vsig
        pos_g, vel_g, mass_g = ps.pos[gas], ps.vel[gas], ps.mass[gas]
        with self.timers.measure(
            f"{label} Calc_Kernel_Size_and_Density", backend=self.backend.name
        ):
            d = compute_density(
                pos_g,
                vel_g,
                mass_g,
                ps.u[gas],
                ps.h[gas],
                n_ngb=min(cfg.n_ngb, max(gas.size - 1, 1)),
                counter=self.counter,
                index=self.index,
                backend=self.backend,
            )
            # Register the gas scope so box queries (SN region extraction)
            # can answer through the same grid.
            self.index.set_grid_scope(gas)
        self._write_gas_fields(ps, gas, d.h, d.dens, d.pres, d.csnd, d.divv, d.curlv, d.omega)
        with self.timers.measure(f"{label} Calc_Hydro_Force", backend=self.backend.name):
            f = compute_hydro_forces(
                pos_g,
                vel_g,
                mass_g,
                d.h,
                d.dens,
                d.pres,
                d.csnd,
                omega=d.omega,
                divv=d.divv,
                curlv=d.curlv,
                counter=self.counter,
                grid=d.grid,
                backend=self.backend,
            )
        acc[gas] = f.acc
        du[gas] = f.du_dt
        vsig[gas] = f.v_signal
        if d.grid is not None:
            # The raw candidate list (the step's largest transient) has
            # served every sweep and the force pass; only the compacted
            # pair lists below are needed for the fast path.
            d.grid.release_pairs()
        self._hydro_cache = _HydroCache(
            n_total=len(ps), gas=gas, density=d, force_pairs=f.pairs
        )
        return acc, du, vsig

    def refresh_hydro(
        self, ps: ParticleSet, label: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Step-7 fast path: re-evaluate hydro after energy/velocity changes
        at *unchanged positions and kernel sizes*.

        Reuses the cached gather and half-pair edge lists — equivalent to a
        cold :meth:`hydro` call (the h solve would converge on its first
        sweep and return identical pairs) at a fraction of the cost.
        Returns ``None`` when no valid cache exists (positions or membership
        changed since the last full pass): the caller must fall back to
        :meth:`hydro`.  Like :meth:`hydro`, the returned arrays are the
        engine's persistent buffers — valid until the next pass.
        """
        cache = self._hydro_cache
        if cache is None or cache.n_total != len(ps):
            return None
        gas, d = cache.gas, cache.density
        pos_g, vel_g, mass_g = ps.pos[gas], ps.vel[gas], ps.mass[gas]
        acc, du, vsig = self._full_buffers(len(ps))
        with self.timers.measure(
            f"{label} Calc_Kernel_Size_and_Density", backend=self.backend.name
        ):
            pres = pressure(d.dens, ps.u[gas])
            csnd = sound_speed_from_density(d.dens, pres)
            divv, curlv = refresh_velocity_fields(d, pos_g, vel_g, mass_g)
        self._write_gas_fields(ps, gas, d.h, d.dens, pres, csnd, divv, curlv, d.omega)
        with self.timers.measure(f"{label} Calc_Hydro_Force", backend=self.backend.name):
            f = compute_hydro_forces(
                pos_g,
                vel_g,
                mass_g,
                d.h,
                d.dens,
                pres,
                csnd,
                omega=d.omega,
                divv=divv,
                curlv=curlv,
                counter=self.counter,
                pairs=cache.force_pairs,
                backend=self.backend,
            )
        acc[gas] = f.acc
        du[gas] = f.du_dt
        vsig[gas] = f.v_signal
        return acc, du, vsig

    @staticmethod
    def _write_gas_fields(ps, gas, h, dens, pres, csnd, divv, curlv, omega) -> None:
        ps.h[gas] = h
        ps.dens[gas] = dens
        ps.pres[gas] = pres
        ps.csnd[gas] = csnd
        ps.divv[gas] = divv
        ps.curlv[gas] = curlv
        ps.fgrad[gas] = omega
