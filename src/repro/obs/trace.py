"""Span tracing: nested, attributed, monotonic-clock wall-time records.

One :class:`Tracer` collects everything a run emits on one rank:

* **spans** — ``with tracer.span("gravity", cat="sim", step=n):`` records a
  ``(name, cat, t0, dur, rank, tid, depth, attrs)`` row when the block
  exits.  Spans nest (the tracer keeps a stack; ``depth`` and the Chrome
  exporter's flame view come from it) and carry arbitrary key/value
  attributes — ``bytes=...`` on comm spans, ``backend=...`` on kernel
  spans, ``worker=...`` on serve spans.
* **completed spans** — ``tracer.span_at(name, t0, dur, ...)`` records an
  interval measured elsewhere (the serve pipeline brackets batches by
  dispatch/done timestamps it already tracks).
* **instants** — ``tracer.instant(name, ...)`` is a zero-duration marker
  (dispatches, claims, redispatches, worker restarts).
* **counters / gauges** — ``tracer.count(name, n)`` accumulates;
  ``tracer.gauge(name, v)`` keeps the last value.  Point metrics that are
  not worth a span land here instead of in ad-hoc dicts.
* **meta** — ``tracer.attach_meta(key, mapping)`` stores one JSON-able
  blob per key (the serve pipeline attaches its
  :meth:`~repro.serve.metrics.ServiceMetrics.to_dict` export so the run
  report can price hidden vs exposed inference).

Clocks: all timestamps are ``time.monotonic()`` seconds relative to the
tracer's construction epoch.  Nothing here reads the absolute wall clock —
the repo's determinism rule (``repro.lint`` R1) applies to this package
too, and traces from two runs are comparable by construction.

:class:`NullTracer` is the default everywhere a tracer can be passed: every
method is a no-op returning a shared null span, so an untraced hot path
pays one attribute load and one call — the <5% overhead budget of
``benchmarks/bench_obs_overhead.py`` is enforced against the *enabled*
tracer; the null path is free for all practical purposes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["NULL_TRACER", "NullTracer", "Span", "SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One closed span: what the exporters and the run report consume."""

    name: str
    cat: str
    t0: float          # seconds since the tracer epoch (monotonic)
    dur: float         # seconds
    rank: int
    tid: str           # Chrome-trace thread lane: "main", "worker-0", ...
    depth: int         # nesting depth at open time (0 = top level)
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json_obj(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "cat": self.cat,
            "t0": self.t0,
            "dur": self.dur,
            "rank": self.rank,
            "tid": self.tid,
            "depth": self.depth,
        }
        if self.attrs:
            obj["attrs"] = self.attrs
        return obj


class _NullSpan:
    """The shared no-op span: context manager + attribute sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


class NullTracer:
    """Disabled tracer: every call is a no-op (the default everywhere).

    ``enabled`` is False so instrumented code can skip even argument
    construction on its hottest paths (``if tracer.enabled: ...``).
    """

    enabled = False
    rank = 0

    def span(self, name: str, cat: str = "sim", tid: str | None = None,
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def span_at(self, name: str, t0: float, dur: float, cat: str = "sim",
                tid: str | None = None, **attrs: Any) -> None:
        pass

    def instant(self, name: str, cat: str = "sim", tid: str | None = None,
                **attrs: Any) -> None:
        pass

    def count(self, name: str, n: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def attach_meta(self, key: str, values: dict) -> None:
        pass

    def now(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()

#: The shared disabled tracer — pass this (or None, which resolves to it)
#: anywhere tracing is optional.
NULL_TRACER = NullTracer()


class Span:
    """A live span handle: context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "cat", "tid", "rank", "attrs",
                 "_t0", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: str,
                 rank: int, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.rank = rank
        self.attrs = attrs
        self._t0 = 0.0
        self._depth = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tr = self._tracer
        self._depth = len(tr._stack)
        tr._stack.append(self.name)
        self._t0 = tr.now()
        return self

    def __exit__(self, *exc: object) -> bool:
        tr = self._tracer
        dur = tr.now() - self._t0
        tr._stack.pop()
        tr.records.append(SpanRecord(
            name=self.name, cat=self.cat, t0=self._t0, dur=dur,
            rank=self.rank, tid=self.tid, depth=self._depth,
            attrs=self.attrs,
        ))
        return False


class Tracer:
    """Collects spans, counters, gauges, and meta blobs for one rank.

    Parameters
    ----------
    rank : the MPI-style rank this tracer records for (Chrome-trace pid).
    run_id : free-form run label carried into every export.
    """

    enabled = True

    def __init__(self, rank: int = 0, run_id: str = "run") -> None:
        self.rank = int(rank)
        self.run_id = str(run_id)
        self.records: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.meta: dict[str, dict] = {}
        self._stack: list[str] = []
        # Monotonic epoch: every timestamp is relative to this instant.
        self._epoch = time.monotonic()

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        """Seconds since the tracer epoch (monotonic clock only)."""
        return time.monotonic() - self._epoch

    # ----------------------------------------------------------------- spans
    def span(self, name: str, cat: str = "sim", tid: str | None = None,
             **attrs: Any) -> Span:
        """An unopened span handle; use as ``with tracer.span(...) as sp:``.

        A ``rank=`` keyword overrides the recorded rank for this span —
        simulated-MPI code records per-rank spans on one shared tracer.
        """
        rank = int(attrs.pop("rank", self.rank))
        return Span(self, name, cat, tid if tid is not None else "main",
                    rank, attrs)

    def span_at(self, name: str, t0: float, dur: float, cat: str = "sim",
                tid: str | None = None, **attrs: Any) -> None:
        """Record an interval measured externally (timestamps from
        :meth:`now`); it does not interact with the nesting stack."""
        rank = int(attrs.pop("rank", self.rank))
        self.records.append(SpanRecord(
            name=name, cat=cat, t0=float(t0), dur=float(dur), rank=rank,
            tid=tid if tid is not None else "main", depth=len(self._stack),
            attrs=attrs,
        ))

    def instant(self, name: str, cat: str = "sim", tid: str | None = None,
                **attrs: Any) -> None:
        """A zero-duration marker event."""
        self.span_at(name, self.now(), 0.0, cat=cat, tid=tid, **attrs)

    # ------------------------------------------------------ counters / gauges
    def count(self, name: str, n: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def attach_meta(self, key: str, values: dict) -> None:
        """Store one JSON-able mapping under ``key`` (last write wins)."""
        self.meta[str(key)] = dict(values)

    # ------------------------------------------------------------- summaries
    def totals(self, cat: str | None = None) -> dict[str, float]:
        """Summed span seconds per name (optionally one category only).

        Nested spans each contribute their own duration — names are
        distinct across nesting levels in the repo's taxonomy, so per-name
        sums match what a :class:`repro.util.timers.TimerRegistry` would
        have accumulated for the same brackets.
        """
        out: dict[str, float] = {}
        for rec in self.records:
            if cat is not None and rec.cat != cat:
                continue
            out[rec.name] = out.get(rec.name, 0.0) + rec.dur
        return out
