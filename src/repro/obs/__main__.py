"""``python -m repro.obs`` — run-report, trace conversion, smoke runs.

Subcommands
-----------

``report RUN [--json] [--diff OTHER]``
    Render the Table-3-style breakdown of a traced run (a run directory of
    ``trace-rank*.jsonl`` streams, or one stream file).  ``--diff`` lines
    two runs up row by row for regression triage.

``chrome RUN -o trace.json``
    Convert a run to Chrome Trace Event JSON; open in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``.

``smoke --out DIR``
    Run a small traced galaxy simulation end to end and write the full
    artifact set (JSONL streams, ``chrome-trace.json``, ``report.txt``,
    ``report.json``) — the CI serve job uploads this directory so every
    build carries an openable trace.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import diff_reports, report_json, report_run

    report = report_run(args.run)
    if args.diff is not None:
        other = report_run(args.diff)
        sys.stdout.write(diff_reports(report, other))
        return 0
    sys.stdout.write(report_json(report) + "\n" if args.json else report.to_text())
    return 0


def _cmd_chrome(args: argparse.Namespace) -> int:
    from repro.obs.export import load_run, write_chrome_trace

    out = write_chrome_trace(load_run(args.run), args.out)
    print(f"wrote {out}")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro import GalaxySimulation, make_mw_mini
    from repro.obs.export import write_chrome_trace, write_run
    from repro.obs.report import report_json, report_traces
    from repro.obs.trace import Tracer

    out_dir = Path(args.out)
    tracer = Tracer(run_id="obs-smoke")
    ps = make_mw_mini(n_total=args.n, seed=1)
    with GalaxySimulation(
        ps, dt=2e-3, seed=1, n_pool=4, latency_steps=2,
        serve_transport=args.transport, tracer=tracer,
    ) as sim:
        sim.run(args.steps)
        sim.attach_service_metrics()
    stream = write_run(tracer, out_dir)
    from repro.obs.export import load_run

    traces = load_run(out_dir)
    write_chrome_trace(traces, out_dir / "chrome-trace.json")
    report = report_traces(traces)
    (out_dir / "report.txt").write_text(report.to_text())
    (out_dir / "report.json").write_text(report_json(report) + "\n")
    sys.stdout.write(report.to_text())
    print(f"artifacts: {stream.parent}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="span-trace reports and conversions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="Table-3-style run report")
    p_report.add_argument("run", help="run directory or trace .jsonl file")
    p_report.add_argument("--json", action="store_true", help="emit JSON")
    p_report.add_argument("--diff", default=None, metavar="OTHER",
                          help="diff against a second run")
    p_report.set_defaults(func=_cmd_report)

    p_chrome = sub.add_parser("chrome", help="convert to Chrome trace JSON")
    p_chrome.add_argument("run", help="run directory or trace .jsonl file")
    p_chrome.add_argument("-o", "--out", required=True, help="output .json path")
    p_chrome.set_defaults(func=_cmd_chrome)

    p_smoke = sub.add_parser("smoke", help="traced demo run + full artifacts")
    p_smoke.add_argument("--out", required=True, help="artifact directory")
    p_smoke.add_argument("--n", type=int, default=400, help="particle count")
    p_smoke.add_argument("--steps", type=int, default=4, help="steps to run")
    p_smoke.add_argument("--transport", default="sync",
                         choices=("sync", "process", "shm"))
    p_smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
