"""``repro.obs`` — unified span tracing, run telemetry, and run reports.

The paper's headline evidence is a per-routine wall-clock breakdown
(Table 3: MPI_Wtime/Barrier brackets reduced to the slowest rank) and the
scaling curves built from it (Figs. 6–7).  Before this package the repo's
telemetry was three disconnected systems — :class:`repro.util.timers
.TimerRegistry`, :class:`repro.serve.metrics.ServiceMetrics`, and the
:class:`repro.fdps.comm.CommStats` ledger — none of which could answer
"where did step 1234 spend its time, and was inference hidden or exposed?"
for a live run.  ``repro.obs`` is the one stream they all feed:

* :class:`Tracer` — nested context-manager spans with categories and
  key/value attributes, monotonic-clock only (the determinism lint rule
  holds here too), plus counters/gauges and attached meta blobs;
* :class:`NullTracer` — the default everywhere; an untraced run pays one
  no-op call per bracket (``benchmarks/bench_obs_overhead.py`` pins the
  enabled-tracer overhead at <=5% on the 20k-particle step and asserts
  traced runs stay bit-identical);
* exporters (:mod:`repro.obs.export`) — per-rank JSONL streams and
  Chrome-trace/Perfetto JSON (``pid`` = rank, ``tid`` = worker/phase lane);
* the run report (:mod:`repro.obs.report`, CLI ``python -m repro.obs
  report <run>``) — a Table-3-style breakdown using the same slowest-rank
  ``TimerRegistry`` reduction, per-label comm bytes matching the
  ``CommStats`` ledger, hidden-vs-exposed inference priced by
  :func:`repro.perf.costmodel.serve_summary`, and a two-run diff mode.

Span taxonomy
-------------

Every instrumented seam emits spans in one of three categories; names are
stable keys consumed by the report and the benchmarks:

======= ======================== =====================================================
cat     emitted by               span names (attrs)
======= ======================== =====================================================
sim     ``core.integrator`` via  ``step`` (step); ``Identify_SNe``; ``Send_SNe``;
        the bridged              ``Integration``; ``Final_kick``; ``Receive_SNe``;
        ``TimerRegistry``        ``Exchange_Particle``; ``Star Formation``;
                                 ``Feedback_and_Cooling``
sim     ``accel.engine`` /       ``{1st,2nd} Calc_Force``,
        ``fdps.distributed``     ``... Calc_Kernel_Size_and_Density``,
        (same bridge)            ``... Calc_Hydro_Force`` (backend);
                                 ``Decompose_Domain``, ``Exchange_LET`` — per rank
                                 (rank)
comm    ``fdps.comm.SimComm``    one span per ledger row: the op label
                                 (``pool_p2p``, ``exchange_particles``, ...) with
                                 (bytes, messages, critical_bytes) attached
serve   ``serve.server`` /       ``serve.dispatch`` (batch, events); ``serve.claim``
        ``serve.shm``            (worker); ``serve.batch`` (worker, busy_s);
                                 ``serve.exposed_wait``; ``serve.inline_predict``;
                                 ``serve.redispatch`` (generation, cause);
                                 ``serve.inline_recovery`` (events, cause);
                                 ``serve.worker_restart`` (worker);
                                 ``serve.shm.encode`` (slots, fallbacks)
======= ======================== =====================================================

Opening a trace: ``python -m repro.obs chrome RUN -o trace.json`` then load
``trace.json`` in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``; ranks appear as processes, workers/phases as thread
lanes.  Report examples::

    python -m repro.obs report runs/mw20k/
    python -m repro.obs report runs/mw20k/ --json
    python -m repro.obs report runs/mw20k/ --diff runs/mw20k-numba/
    python -m repro.obs smoke --out runs/smoke

Tracing a simulation: pass ``tracer=Tracer()`` to
:class:`repro.core.simulation.GalaxySimulation` (it threads the tracer
through the integrator timers, the force engine, the serve pipeline, and —
on multi-rank drivers — the communicator) and export with
``sim.write_trace(run_dir)``.
"""

from repro.obs.export import (
    load_jsonl,
    load_run,
    to_chrome_trace,
    trace_path,
    write_chrome_trace,
    write_jsonl,
    write_run,
)
from repro.obs.report import RunReport, diff_reports, report_run, report_traces
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "RunReport",
    "Span",
    "SpanRecord",
    "Tracer",
    "diff_reports",
    "load_jsonl",
    "load_run",
    "report_run",
    "report_traces",
    "to_chrome_trace",
    "trace_path",
    "write_chrome_trace",
    "write_jsonl",
    "write_run",
]
