"""The run report: a Table-3-style per-routine breakdown from a trace.

The paper's Table 3 is a per-routine wall-clock breakdown measured with
MPI_Wtime/MPI_Barrier brackets and reduced to the *slowest* MPI process
(its footnote).  :func:`report_run` reproduces that accounting from a
recorded trace:

* every ``sim``-category span name becomes one breakdown row; per-rank
  totals are rebuilt into :class:`repro.util.timers.TimerRegistry` objects
  and merged with :meth:`TimerRegistry.slowest` — literally the same
  reduction the in-process timers use;
* ``comm``-category spans (one per labelled :class:`~repro.fdps.comm
  .SimComm` ledger row) aggregate into per-label seconds, bytes, messages,
  and critical-path bytes — the byte figures match the
  :class:`~repro.fdps.comm.CommStats` ledger exactly because the spans are
  emitted at the same merge points;
* the ``service_metrics`` attachment (a versioned
  :meth:`~repro.serve.metrics.ServiceMetrics.to_dict` export) is priced by
  :func:`repro.perf.costmodel.serve_summary` into hidden vs exposed
  inference seconds — the paper's "DL fully overlaps" claim, checked
  against this run;
* :func:`diff_reports` lines two runs up row by row for regression triage
  (``python -m repro.obs report A --diff B``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.export import LoadedTrace, load_run
from repro.util.timers import TimerRegistry

__all__ = ["RunReport", "diff_reports", "report_run", "report_traces"]

#: Umbrella spans excluded from the breakdown rows (they *contain* the
#: breakdown; adding them would double-count every phase).
_UMBRELLA_NAMES = {"step"}


@dataclass
class RunReport:
    """Everything the report CLI prints, in structured form."""

    run_id: str = "run"
    n_ranks: int = 1
    n_steps: int = 0
    wall_s: float = 0.0
    #: name -> {"slowest", "mean", "count"} over ranks (Table-3 rows).
    breakdown: dict[str, dict[str, float]] = field(default_factory=dict)
    #: label -> {"seconds", "bytes", "messages", "critical_bytes", "calls"}.
    comm: dict[str, dict[str, float]] = field(default_factory=dict)
    #: serve span totals (name -> seconds) + priced summary.
    serve_spans: dict[str, float] = field(default_factory=dict)
    serve_summary: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    # -------------------------------------------------------------- exports
    def to_json_obj(self) -> dict:
        return {
            "run_id": self.run_id,
            "n_ranks": self.n_ranks,
            "n_steps": self.n_steps,
            "wall_s": self.wall_s,
            "breakdown": self.breakdown,
            "comm": self.comm,
            "serve_spans": self.serve_spans,
            "serve_summary": self.serve_summary,
            "counters": self.counters,
        }

    def to_text(self) -> str:
        lines = [
            f"run report: {self.run_id}  "
            f"(ranks={self.n_ranks}, steps={self.n_steps}, "
            f"wall={self.wall_s:.3f}s)",
            "",
            "time breakdown (slowest rank, Table-3 reduction)",
            f"  {'part':<34} {'slowest [s]':>12} {'mean [s]':>10} {'calls':>8}",
        ]
        total = 0.0
        for name, row in sorted(
            self.breakdown.items(), key=lambda kv: -kv[1]["slowest"]
        ):
            total += row["slowest"]
            lines.append(
                f"  {name:<34} {row['slowest']:>12.4f} "
                f"{row['mean']:>10.4f} {int(row['count']):>8d}"
            )
        lines.append(f"  {'TOTAL':<34} {total:>12.4f}")
        if self.comm:
            lines += ["", "communication (per ledger label)",
                      f"  {'label':<22} {'seconds':>9} {'bytes':>12} "
                      f"{'critical':>12} {'msgs':>8} {'calls':>7}"]
            for label, row in sorted(self.comm.items()):
                lines.append(
                    f"  {label:<22} {row['seconds']:>9.4f} "
                    f"{int(row['bytes']):>12d} {int(row['critical_bytes']):>12d} "
                    f"{int(row['messages']):>8d} {int(row['calls']):>7d}"
                )
        if self.serve_spans or self.serve_summary:
            lines += ["", "surrogate serving"]
            for name, seconds in sorted(self.serve_spans.items()):
                lines.append(f"  {name:<34} {seconds:>12.4f}")
            summary = self.serve_summary
            if summary:
                lines.append(
                    f"  inference: hidden "
                    f"{summary.get('inference_hidden_s', 0.0):.4f}s / "
                    f"exposed {summary.get('inference_exposed_s', 0.0):.4f}s "
                    f"(overlap efficiency "
                    f"{summary.get('overlap_efficiency', 0.0):.3f})"
                )
        if self.counters:
            lines += ["", "counters"]
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name:<34} {value:>12g}")
        return "\n".join(lines) + "\n"


def _sim_registries(traces: list[LoadedTrace]) -> list[TimerRegistry]:
    """Rebuild one TimerRegistry per rank from the sim-category spans."""
    by_rank: dict[int, TimerRegistry] = {}
    for trace in traces:
        for rec in trace.records:
            if rec.cat != "sim" or rec.name in _UMBRELLA_NAMES:
                continue
            reg = by_rank.setdefault(rec.rank, TimerRegistry())
            timer = reg.get(rec.name)
            timer.total += rec.dur
            timer.count += 1
    return [by_rank[r] for r in sorted(by_rank)]


def report_traces(traces: list[LoadedTrace]) -> RunReport:
    """Build the report from already-loaded trace streams."""
    report = RunReport()
    if traces:
        report.run_id = traces[0].run_id
    ranks = {t.rank for t in traces} | {
        rec.rank for t in traces for rec in t.records
    }
    report.n_ranks = max(len(ranks), 1)

    # --- Table-3 rows: slowest-rank reduction via TimerRegistry ------------
    registries = _sim_registries(traces)
    slowest = TimerRegistry.slowest(registries)
    for name, worst in slowest.items():
        counts = [reg.get(name).count for reg in registries if name in reg.timers]
        totals = [reg.get(name).total for reg in registries if name in reg.timers]
        report.breakdown[name] = {
            "slowest": worst,
            "mean": sum(totals) / len(totals) if totals else 0.0,
            "count": max(counts) if counts else 0,
        }

    # --- steps + wall extent ----------------------------------------------
    t_end = 0.0
    for trace in traces:
        for rec in trace.records:
            t_end = max(t_end, rec.t0 + rec.dur)
            if rec.name == "step" and rec.cat == "sim":
                report.n_steps += 1
            elif rec.cat == "comm":
                row = report.comm.setdefault(rec.name, {
                    "seconds": 0.0, "bytes": 0.0, "messages": 0.0,
                    "critical_bytes": 0.0, "calls": 0.0,
                })
                row["seconds"] += rec.dur
                row["bytes"] += float(rec.attrs.get("bytes", 0))
                row["messages"] += float(rec.attrs.get("messages", 0))
                row["critical_bytes"] += float(rec.attrs.get("critical_bytes", 0))
                row["calls"] += 1
            elif rec.cat == "serve":
                report.serve_spans[rec.name] = (
                    report.serve_spans.get(rec.name, 0.0) + rec.dur
                )
        for name, value in trace.counters.items():
            report.counters[name] = report.counters.get(name, 0.0) + value
    report.wall_s = t_end

    # --- hidden vs exposed inference from the attached service metrics ----
    metrics = {}
    for trace in traces:
        if "service_metrics" in trace.meta:
            metrics = trace.meta["service_metrics"]
            break
    if metrics:
        from repro.perf.costmodel import serve_summary

        report.serve_summary = serve_summary(metrics)
    return report


def report_run(path: str | Path) -> RunReport:
    """Load a run directory (or single stream) and build its report."""
    return report_traces(load_run(path))


def diff_reports(a: RunReport, b: RunReport) -> str:
    """Row-aligned breakdown diff of two runs (regression triage)."""
    lines = [
        f"run diff: {a.run_id} vs {b.run_id}",
        f"  {'part':<34} {'A [s]':>10} {'B [s]':>10} {'delta':>10} {'ratio':>7}",
    ]
    names = sorted(set(a.breakdown) | set(b.breakdown))
    for name in names:
        va = a.breakdown.get(name, {}).get("slowest", 0.0)
        vb = b.breakdown.get(name, {}).get("slowest", 0.0)
        ratio = vb / va if va > 0 else float("inf") if vb > 0 else 1.0
        lines.append(
            f"  {name:<34} {va:>10.4f} {vb:>10.4f} {vb - va:>+10.4f} "
            f"{ratio:>7.2f}"
        )
    wall_ratio = b.wall_s / a.wall_s if a.wall_s > 0 else 1.0
    lines.append(
        f"  {'WALL':<34} {a.wall_s:>10.4f} {b.wall_s:>10.4f} "
        f"{b.wall_s - a.wall_s:>+10.4f} {wall_ratio:>7.2f}"
    )
    return "\n".join(lines) + "\n"


def report_json(report: RunReport) -> str:
    return json.dumps(report.to_json_obj(), indent=2)
