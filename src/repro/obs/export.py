"""Trace exporters and loaders: per-rank JSONL and Chrome/Perfetto JSON.

The on-disk run layout is one directory per run containing one
``trace-rank<r>.jsonl`` stream per rank (single-rank runs write exactly
one).  Each line is a self-describing JSON object:

========= ==============================================================
``type``  contents
========= ==============================================================
meta      ``run_id``, ``rank``, ``schema`` — always the first line
span      one :class:`~repro.obs.trace.SpanRecord` (``name``, ``cat``,
          ``t0``, ``dur``, ``rank``, ``tid``, ``depth``, ``attrs``)
counters  the tracer's accumulated counters (one line per stream)
gauges    last-value gauges (one line per stream)
attach    one attached meta blob (``key`` + ``values``), e.g. the serve
          pipeline's ``service_metrics``
========= ==============================================================

``to_chrome_trace`` renders the same records as a Chrome Trace Event JSON
(open in Perfetto — https://ui.perfetto.dev — or ``chrome://tracing``):
complete events (``ph: "X"``) with ``pid`` = rank and ``tid`` = the span's
thread lane ("main", "worker-0", ...), microsecond timestamps, span attrs
in ``args``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "JSONL_SCHEMA_VERSION",
    "LoadedTrace",
    "load_jsonl",
    "load_run",
    "to_chrome_trace",
    "trace_path",
    "write_chrome_trace",
    "write_jsonl",
    "write_run",
]

#: Version stamp written into every stream's meta line; bump on any
#: incompatible change to the line shapes above.
JSONL_SCHEMA_VERSION = 1


def trace_path(run_dir: str | Path, rank: int = 0) -> Path:
    """Canonical per-rank stream path inside a run directory."""
    return Path(run_dir) / f"trace-rank{int(rank)}.jsonl"


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write one tracer's records as a JSONL stream; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps({
        "type": "meta",
        "schema": JSONL_SCHEMA_VERSION,
        "run_id": tracer.run_id,
        "rank": tracer.rank,
    })]
    lines.extend(json.dumps(rec.to_json_obj()) for rec in tracer.records)
    if tracer.counters:
        lines.append(json.dumps({"type": "counters", "values": tracer.counters}))
    if tracer.gauges:
        lines.append(json.dumps({"type": "gauges", "values": tracer.gauges}))
    for key, values in tracer.meta.items():
        lines.append(json.dumps({"type": "attach", "key": key, "values": values}))
    path.write_text("\n".join(lines) + "\n")
    return path


def write_run(tracer: Tracer, run_dir: str | Path) -> Path:
    """Write a single-tracer run directory; returns the stream path."""
    return write_jsonl(tracer, trace_path(run_dir, tracer.rank))


class LoadedTrace:
    """One parsed JSONL stream: records + counters/gauges/meta."""

    def __init__(self) -> None:
        self.run_id: str = "run"
        self.rank: int = 0
        self.schema: int = JSONL_SCHEMA_VERSION
        self.records: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.meta: dict[str, dict] = {}


def load_jsonl(path: str | Path) -> LoadedTrace:
    """Parse one stream back into records (inverse of :func:`write_jsonl`)."""
    out = LoadedTrace()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "meta":
                out.run_id = obj.get("run_id", "run")
                out.rank = int(obj.get("rank", 0))
                out.schema = int(obj.get("schema", JSONL_SCHEMA_VERSION))
            elif kind == "span":
                out.records.append(SpanRecord(
                    name=obj["name"], cat=obj.get("cat", "sim"),
                    t0=float(obj["t0"]), dur=float(obj["dur"]),
                    rank=int(obj.get("rank", out.rank)),
                    tid=str(obj.get("tid", "main")),
                    depth=int(obj.get("depth", 0)),
                    attrs=obj.get("attrs", {}),
                ))
            elif kind == "counters":
                out.counters.update(obj.get("values", {}))
            elif kind == "gauges":
                out.gauges.update(obj.get("values", {}))
            elif kind == "attach":
                out.meta[obj["key"]] = obj.get("values", {})
    return out


def load_run(path: str | Path) -> list[LoadedTrace]:
    """Load a run: a directory of ``trace-rank*.jsonl`` or a single file.

    Returns one :class:`LoadedTrace` per rank stream, rank-sorted.
    """
    p = Path(path)
    if p.is_dir():
        streams = sorted(p.glob("trace-rank*.jsonl")) or sorted(p.glob("*.jsonl"))
        if not streams:
            raise FileNotFoundError(f"no trace-rank*.jsonl streams under {p}")
        return sorted((load_jsonl(s) for s in streams), key=lambda t: t.rank)
    return [load_jsonl(p)]


def to_chrome_trace(traces: list[LoadedTrace] | Tracer) -> dict:
    """Chrome Trace Event JSON for one run (pid=rank, tid=worker/phase)."""
    if isinstance(traces, Tracer):
        snapshot = LoadedTrace()
        snapshot.run_id = traces.run_id
        snapshot.rank = traces.rank
        snapshot.records = list(traces.records)
        snapshot.counters = dict(traces.counters)
        traces = [snapshot]
    events: list[dict] = []
    for trace in traces:
        events.append({
            "name": "process_name", "ph": "M", "pid": trace.rank,
            "args": {"name": f"rank {trace.rank}"},
        })
        tids = {rec.tid for rec in trace.records}
        tid_index = {tid: i for i, tid in enumerate(sorted(tids))}
        for tid, i in tid_index.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": trace.rank,
                "tid": i, "args": {"name": tid},
            })
        for rec in trace.records:
            event = {
                "name": rec.name,
                "cat": rec.cat,
                "ph": "X" if rec.dur > 0.0 else "i",
                "ts": rec.t0 * 1e6,
                "pid": rec.rank,
                "tid": tid_index[rec.tid],
            }
            if rec.dur > 0.0:
                event["dur"] = rec.dur * 1e6
            else:
                event["s"] = "t"  # instant scope: thread
            if rec.attrs:
                event["args"] = rec.attrs
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(traces: list[LoadedTrace] | Tracer,
                       path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(traces)))
    return path
