"""Local essential tree (LET) construction and exchange.

Gravity is long-range, so every rank needs *some* information about every
other rank's particles.  The LET is the minimal such summary: walking the
local tree against a remote domain's bounding box with the multipole
acceptance criterion yields, per remote rank, a mixture of

* **pseudo-particles** — monopole (mass, centre of mass) of accepted nodes,
* **real particles** — members of leaves that the MAC forced open
  (these are near the remote domain's boundary).

Exchanging these lists is an all-to-all over all main ranks — the most
time-consuming part at full Fugaku scale (Sec. 5.2.3) — so the exchange can
be routed through either the flat or the three-phase torus alltoallv.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.comm import SimComm
from repro.fdps.domain import DomainDecomposition
from repro.fdps.tree import Octree


@dataclass
class LetExport:
    """What one rank sends another: positions and masses (pseudo + real)."""

    pos: np.ndarray   # (K, 3)
    mass: np.ndarray  # (K,)
    n_pseudo: int     # first n_pseudo entries are node monopoles

    @property
    def n_real(self) -> int:
        return len(self.mass) - self.n_pseudo

    @property
    def nbytes(self) -> int:
        """Wire size of :meth:`pack` (payload rows plus the header row)."""
        return (len(self.mass) + 1) * 4 * 8

    def pack(self) -> np.ndarray:
        """Serialize to one float64 buffer (for byte-accurate comm counting).

        The first row is a header carrying the pseudo/real split — part of
        the payload a real MPI exchange would also ship (as send counts), so
        it is byte-counted like everything else.
        """
        out = np.empty((len(self.mass) + 1, 4), dtype=np.float64)
        out[0] = (float(self.n_pseudo), float(self.n_real), 0.0, 0.0)
        out[1:, :3] = self.pos
        out[1:, 3] = self.mass
        return out

    @staticmethod
    def unpack(buf: np.ndarray) -> "LetExport":
        buf = np.asarray(buf, dtype=np.float64).reshape(-1, 4)
        n_pseudo, n_real = int(buf[0, 0]), int(buf[0, 1])
        body = buf[1:]
        if len(body) != n_pseudo + n_real:
            raise ValueError(
                f"LET buffer header claims {n_pseudo}+{n_real} entries, "
                f"got {len(body)}"
            )
        return LetExport(
            pos=body[:, :3].copy(), mass=body[:, 3].copy(), n_pseudo=n_pseudo
        )

    @staticmethod
    def merge(exports: list["LetExport"]) -> "LetExport":
        """Concatenate imports keeping the split: all monopoles first, then
        all real boundary particles, with the summed ``n_pseudo``."""
        if not exports:
            return LetExport(pos=np.empty((0, 3)), mass=np.empty(0), n_pseudo=0)
        n_pseudo = sum(e.n_pseudo for e in exports)
        pos = np.concatenate(
            [e.pos[: e.n_pseudo] for e in exports]
            + [e.pos[e.n_pseudo :] for e in exports]
        )
        mass = np.concatenate(
            [e.mass[: e.n_pseudo] for e in exports]
            + [e.mass[e.n_pseudo :] for e in exports]
        )
        return LetExport(pos=pos, mass=mass, n_pseudo=n_pseudo)


def build_let_exports(
    tree: Octree, target_lo: np.ndarray, target_hi: np.ndarray, theta: float
) -> LetExport:
    """LET export list from a local tree toward the box [target_lo, target_hi]."""
    nodes, parts = tree.walk_box(target_lo, target_hi, theta)
    inv = np.empty_like(tree.order)
    inv[tree.order] = np.arange(len(tree.order))
    pos = np.concatenate([tree.node_com[nodes], tree.sorted_pos[inv[parts]]])
    mass = np.concatenate([tree.node_mass[nodes], tree.sorted_mass[inv[parts]]])
    return LetExport(pos=pos, mass=mass, n_pseudo=len(nodes))


def exchange_let(
    comm: SimComm,
    trees: list[Octree],
    decomp: DomainDecomposition,
    global_lo: np.ndarray,
    global_hi: np.ndarray,
    theta: float,
    use_3d: bool = False,
) -> list[LetExport]:
    """All-pairs LET exchange.

    Parameters
    ----------
    comm : the main-node communicator (one rank per domain).
    trees : per-rank local trees.
    decomp : the current domain decomposition.
    theta : opening angle.
    use_3d : route through the three-phase torus alltoallv.

    Returns
    -------
    Per-rank :class:`LetExport` holding the *imported* (remote) matter.
    """
    p = comm.n_ranks
    send: list[list[np.ndarray | None]] = [[None] * p for _ in range(p)]
    for src in range(p):
        for dst in range(p):
            if src == dst:
                continue
            lo, hi = decomp.finite_domain_box(dst, global_lo, global_hi)
            send[src][dst] = build_let_exports(trees[src], lo, hi, theta).pack()
    exchange = comm.alltoallv_3d if use_3d else comm.alltoallv
    recv = exchange(send, label="exchange_let")
    imported: list[LetExport] = []
    for dst in range(p):
        bufs = [recv[dst][src] for src in range(p) if recv[dst][src] is not None]
        imported.append(LetExport.merge([LetExport.unpack(b) for b in bufs]))
    return imported
