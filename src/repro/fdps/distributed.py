"""The distributed FDPS pipeline over the simulated communicator.

This is the multi-rank execution path the paper runs on Fugaku, executed
faithfully (same phases, same messages) on the in-process MPI.  Each rank
owns a :class:`repro.accel.SpatialIndex` whose cached octree is reused
everywhere a tree is needed within a step, with explicit invalidation at
the drift and exchange boundaries:

1. **domain decomposition** — multisection over sampled particles, with
   per-particle work weights (Sec. 5.2: the decomposition minimizes the
   *sum* of gravity and hydro work).  Re-decomposition in :meth:`step`
   samples stratified along the per-rank Morton orders (snapshotted from
   the rank indices) and weights particles by the measured interaction
   work of the last force pass plus the hydro surcharge on gas;
2. **particle exchange** — every rank sends emigrants through the (flat or
   3-phase torus) alltoallv.  The payload is the *full* packed particle
   (every :data:`repro.fdps.particles.FIELDS` column), so the byte ledger
   counts exactly what migration costs; membership changed, so every rank's
   spatial index is invalidated;
3. **local tree construction** per rank — at most one build per rank per
   step, through :meth:`SpatialIndex.tree_for` (a still-valid cached tree
   is reused, and the build/reuse counters record the guarantee);
4. **LET exchange** — monopoles + boundary particles toward every remote
   domain, exported by walking the *same* cached per-rank tree;
5. **force calculation** — group-wise walks over that same cached local
   tree, with the imported LET matter (already per-domain aggregated)
   appended to each group's interaction list;
6. a KDK **leapfrog step** built from those forces; the drift invalidates
   every rank's positions before re-decomposition.

The driver is the integration test of the whole framework: forces computed
through the full distributed pipeline must match a single-rank global tree
at tree-code accuracy, with all communication visible in the CommStats
ledgers (used by the performance model's byte-anchored comm terms).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.index import ConcatStratifiedSampler, SpatialIndex
from repro.core.runner.step import leapfrog_drift, leapfrog_kick
from repro.fdps.comm import SimComm, TorusTopology
from repro.fdps.domain import DomainDecomposition, process_grid
from repro.fdps.interaction import InteractionCounter
from repro.fdps.let import exchange_let
from repro.fdps.particles import ParticleSet, ParticleType, packed_width
from repro.fdps.tree import Octree
from repro.gravity.treegrav import tree_accel
from repro.obs.trace import NULL_TRACER
from repro.perf.costmodel import hydro_gravity_work_ratio
from repro.util.timers import TimerRegistry


@dataclass
class DistributedGravity:
    """Multi-rank gravity via the full FDPS pipeline.

    Parameters
    ----------
    n_ranks : number of simulated MPI ranks (main nodes).
    theta : opening angle for both the force walk and the LET export.
    use_torus : route the LET exchange through the 3-phase 3D alltoallv
        (requires ``n_ranks`` to factor into a torus; any count works —
        the factorization is the near-cubic one of ``process_grid``).
    decomp_sample : subsample size for (re-)decomposition fits, as in
        :func:`repro.fdps.domain.multisection_bounds`.
    backend : compute-backend name for the force kernels (None resolves
        ``$REPRO_BACKEND``, then ``numpy``) — every rank's walk runs the
        same kernels the single-rank :class:`repro.accel.ForceEngine` uses.
    """

    n_ranks: int
    theta: float = 0.4
    n_g: int = 128
    leaf_size: int = 16
    use_torus: bool = False
    mixed_precision: bool = False
    decomp_sample: int | None = 100_000
    backend: str | None = None
    #: Optional :class:`repro.obs.trace.Tracer`: per-rank phase spans and
    #: the communicator's ledger spans land on it (``rank`` attr = the
    #: simulated rank, so the run report's slowest-rank merge sees ranks).
    tracer: object | None = None
    grid: tuple[int, int, int] = field(init=False)
    comm: SimComm = field(init=False)
    #: One spatial index per rank: the cached octree serves the LET export
    #: and the force walk; its stats record the builds-per-step guarantee.
    indices: list[SpatialIndex] = field(init=False)
    #: One timer registry per rank — the Table-3 bookkeeping of the
    #: distributed phases, merged with :meth:`TimerRegistry.slowest`.
    timers: list[TimerRegistry] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("need at least one rank")
        self.tracer = self.tracer if self.tracer is not None else NULL_TRACER
        self.grid = process_grid(self.n_ranks)
        topo = TorusTopology(self.grid) if self.use_torus else None
        self.comm = SimComm(self.n_ranks, topology=topo, tracer=self.tracer)
        self.indices = [SpatialIndex() for _ in range(self.n_ranks)]
        self.timers = [
            TimerRegistry(tracer=self.tracer, rank=r) for r in range(self.n_ranks)
        ]
        self._last_work: list[np.ndarray] | None = None
        from repro.accel.backends import get_backend

        self._backend = get_backend(self.backend)

    # ----------------------------------------------------------------- phases
    def decompose(
        self, ps: ParticleSet, weights: np.ndarray | None = None
    ) -> tuple[DomainDecomposition, np.ndarray]:
        """Phase 1: fit the multisection and assign every particle a rank."""
        with self.timers[0].measure("Decompose_Domain"):
            decomp = DomainDecomposition.fit(
                ps.pos, self.grid, weights=weights, sample=self.decomp_sample
            )
            return decomp, decomp.assign(ps.pos)

    def exchange_particles(
        self, locals_: list[ParticleSet], decomp: DomainDecomposition
    ) -> list[ParticleSet]:
        """Phase 2: move emigrants to their new owners via alltoallv.

        Each rank packs its per-destination emigrants as *complete*
        particles — every :data:`~repro.fdps.particles.FIELDS` column,
        via :meth:`ParticleSet.pack` — into one byte-counted buffer per
        destination; receivers rebuild the sets from the wire format.  The
        ledger therefore counts the full migrated payload exactly.  A rank
        whose membership changed (emigrants left or immigrants arrived) has
        its spatial index invalidated; untouched ranks keep their caches.
        """
        p = self.n_ranks
        send: list[list[np.ndarray | None]] = [[None] * p for _ in range(p)]
        keep: list[ParticleSet] = []
        emigrated = [False] * p
        for src in range(p):
            with self.timers[src].measure("Exchange_Particle"):
                ps = locals_[src]
                owner = decomp.assign(ps.pos)
                keep.append(ps.select(owner == src))
                emigrated[src] = len(keep[src]) != len(ps)
                for dst in range(p):
                    if dst == src:
                        continue
                    moving = ps.select(owner == dst)
                    if len(moving) == 0:
                        continue
                    send[src][dst] = moving.pack()  # byte-counted full payload
        recv = (
            self.comm.alltoallv_3d(send, label="exchange_particles")
            if self.use_torus
            else self.comm.alltoallv(send, label="exchange_particles")
        )
        out: list[ParticleSet] = []
        for dst in range(p):
            with self.timers[dst].measure("Exchange_Particle"):
                merged = keep[dst]
                immigrated = False
                for src in range(p):
                    if recv[dst][src] is not None:
                        merged = merged.append(ParticleSet.unpack(recv[dst][src]))
                        immigrated = True
                out.append(merged)
                if emigrated[dst] or immigrated:
                    self.indices[dst].invalidate_all()
        return out

    def exchange_region_ghosts(
        self,
        locals_: list[ParticleSet],
        requests: list[tuple[int, np.ndarray]],
        side: float,
    ) -> list[ParticleSet]:
        """Pull the remote gas of SN-region cubes across rank boundaries.

        ``requests`` is one ``(owner_rank, center)`` pair per SN event whose
        (side)^3 cube may cross the owner's domain box.  Every *other* rank
        scans its local gas for particles inside each cube and ships full
        packed particles to the owner through the same (flat or 3-phase
        torus) alltoallv as the migration path, charged to the
        ``region_ghost`` ledger label — the owner's ``extract_region`` is
        then rank-complete.  Returns one ghost set per request (empty when
        the cube lies entirely inside the owner's slab).

        Wire format per (src, dst) buffer: concatenated blocks, each one
        header row (slot 0 = request index, slot 1 = particle count, padded
        to ``packed_width()``) followed by that many packed particle rows —
        so the ledger counts the true ghost payload plus one row of framing
        per (request, contributing rank) pair.
        """
        p = self.n_ranks
        half = side / 2.0
        width = packed_width()
        empty = ParticleSet.empty(0)
        ghosts: list[ParticleSet] = [empty.copy() for _ in requests]
        if p == 1 or not requests:
            return ghosts
        send: list[list[np.ndarray | None]] = [[None] * p for _ in range(p)]
        for src in range(p):
            with self.timers[src].measure("Exchange_Region"):
                ps = locals_[src]
                if len(ps) == 0:
                    continue
                gas = ps.where_type(ParticleType.GAS)
                blocks: dict[int, list[np.ndarray]] = {}
                for k, (owner, center) in enumerate(requests):
                    if owner == src:
                        continue
                    c = np.asarray(center, dtype=np.float64)
                    inside = gas & np.all(
                        np.abs(ps.pos - c[None, :]) <= half, axis=1
                    )
                    idx = np.flatnonzero(inside)
                    if idx.size == 0:
                        continue
                    payload = ps.select(idx).pack()
                    header = np.zeros((1, width))
                    header[0, 0] = k
                    header[0, 1] = idx.size
                    blocks.setdefault(owner, []).append(
                        np.concatenate([header, payload])
                    )
                for dst, parts in blocks.items():
                    send[src][dst] = np.concatenate(parts)
        recv = (
            self.comm.alltoallv_3d(send, label="region_ghost")
            if self.use_torus
            else self.comm.alltoallv(send, label="region_ghost")
        )
        for dst in range(p):
            with self.timers[dst].measure("Exchange_Region"):
                for src in range(p):
                    buf = recv[dst][src]
                    if buf is None:
                        continue
                    buf = np.asarray(buf, dtype=np.float64).reshape(-1, width)
                    i = 0
                    while i < len(buf):
                        k = int(buf[i, 0])
                        n = int(buf[i, 1])
                        ghosts[k] = ghosts[k].append(
                            ParticleSet.unpack(buf[i + 1 : i + 1 + n])
                        )
                        i += 1 + n
        return ghosts

    def forces(
        self,
        locals_: list[ParticleSet],
        decomp: DomainDecomposition,
        counter: InteractionCounter | None = None,
    ) -> list[np.ndarray]:
        """Phases 3-5: local trees, LET exchange, group-walk forces.

        Each rank's tree comes from its :class:`SpatialIndex` cache (at most
        one build per rank, zero when still valid) and serves both the LET
        export walk and the force walk; imports enter the group interaction
        lists directly.
        """
        glo = np.min([ps.pos.min(axis=0) for ps in locals_ if len(ps)], axis=0)
        ghi = np.max([ps.pos.max(axis=0) for ps in locals_ if len(ps)], axis=0)
        trees: list[Octree | None] = []
        for rank, ps in enumerate(locals_):
            with self.timers[rank].measure("Tree_Construction"):
                trees.append(
                    self.indices[rank].tree_for(
                        ps.pos, ps.mass, leaf_size=self.leaf_size
                    )
                    if len(ps)
                    else None
                )
        # Empty ranks export nothing; exchange_let wants a tree per rank, so
        # substitute a trivial far-away particle (zero mass = no force).
        safe_trees = [
            t
            if t is not None
            else Octree.build(np.array([[1e12, 1e12, 1e12]]), np.array([0.0]))
            for t in trees
        ]
        with self.timers[0].measure("Exchange_LET"):
            imports = exchange_let(
                self.comm, safe_trees, decomp, glo, ghi, self.theta,
                use_3d=self.use_torus,
            )
        accs: list[np.ndarray] = []
        work: list[np.ndarray] = []
        for rank, ps in enumerate(locals_):
            if len(ps) == 0:
                accs.append(np.zeros((0, 3)))
                work.append(np.zeros(0))
                continue
            with self.timers[rank].measure("Calc_Force", backend=self._backend.name):
                res = tree_accel(
                    ps.pos,
                    ps.mass,
                    ps.eps,
                    theta=self.theta,
                    n_g=self.n_g,
                    leaf_size=self.leaf_size,
                    counter=counter,
                    mixed_precision=self.mixed_precision,
                    extra_pos=imports[rank].pos,
                    extra_mass=imports[rank].mass,
                    tree=trees[rank],
                    backend=self._backend,
                )
            accs.append(res.acc)
            work.append(res.work)
        self._last_work = work
        return accs

    # ------------------------------------------------------------ full driver
    def scatter(self, ps: ParticleSet) -> tuple[DomainDecomposition, list[ParticleSet]]:
        """Initial distribution of a global set onto the ranks."""
        decomp, owner = self.decompose(ps)
        for index in self.indices:
            index.invalidate_all()
        return decomp, [ps.select(owner == r) for r in range(self.n_ranks)]

    @staticmethod
    def gather(locals_: list[ParticleSet]) -> ParticleSet:
        """Concatenate all ranks back into one global set (pid-sorted)."""
        out = locals_[0]
        for ps in locals_[1:]:
            out = out.append(ps)
        order = np.argsort(out.pid, kind="stable")
        out.reorder(order)
        return out

    def global_accel(self, ps: ParticleSet) -> np.ndarray:
        """One-shot distributed force evaluation.

        Accelerations are returned aligned row-for-row with the input
        ``ps`` (NOT in pid order): ``acc[i]`` is the acceleration of
        ``ps.pid[i]`` whatever that pid is.
        """
        decomp, locals_ = self.scatter(ps)
        accs = self.forces(locals_, decomp)
        pid = np.concatenate([loc.pid for loc in locals_])
        acc = np.concatenate(accs)
        order = np.argsort(pid, kind="stable")
        # acc[order] is pid-sorted; inv maps each input row to the slot of
        # its pid in that sorted order, restoring input-row alignment.
        inv = np.argsort(np.argsort(ps.pid, kind="stable"), kind="stable")
        return acc[order][inv]

    # ----------------------------------------------------------- step helpers
    def _step_weights(self, locals_: list[ParticleSet]) -> list[np.ndarray]:
        """Per-rank decomposition weights: the measured per-particle gravity
        work of the last force pass (interaction-list lengths) plus the
        Table-3-anchored hydro surcharge on gas particles.

        The surcharge is scaled by the *global* mean gravity work so that
        identical gas particles carry identical weight wherever they
        currently sit — per-gas hydro cost is rank-independent.
        """
        work = self._last_work
        grav: list[np.ndarray] = []
        for rank, ps in enumerate(locals_):
            if work is not None and len(work[rank]) == len(ps):
                grav.append(work[rank].copy())
            else:
                grav.append(np.ones(len(ps)))
        n_total = sum(len(w) for w in grav)
        global_mean = (
            sum(float(w.sum()) for w in grav) / n_total if n_total else 1.0
        )
        surcharge = hydro_gravity_work_ratio() * max(global_mean, 1.0)
        out: list[np.ndarray] = []
        for ps, w in zip(locals_, grav, strict=True):
            gas = ps.where_type(ParticleType.GAS)
            if gas.any():
                w[gas] += surcharge
            out.append(w)
        return out

    def step(
        self,
        locals_: list[ParticleSet],
        decomp: DomainDecomposition,
        dt: float,
        accs: list[np.ndarray] | None = None,
    ) -> tuple[list[ParticleSet], DomainDecomposition, list[np.ndarray]]:
        """One distributed KDK leapfrog step with re-decomposition.

        Returns (new locals, new decomposition, new accelerations) — the
        accelerations are returned so consecutive steps reuse the closing
        force evaluation as the next opening kick (standard KDK chaining).

        Re-decomposition goes through ``DomainDecomposition.fit(weights=...,
        index=...)``: weights are the measured gravity work of the last
        force pass plus the gas hydro surcharge, and the decomposition
        subsample is drawn stratified along the per-rank Morton orders
        (snapshotted before the drift invalidates the caches — a
        permutation remains a spatially even visiting order across one
        sub-cell drift).
        """
        if accs is None:
            accs = self.forces(locals_, decomp)
        weights = self._step_weights(locals_)
        orders = [
            self.indices[rank].cached_order(len(ps))
            for rank, ps in enumerate(locals_)
        ]
        for rank, (ps, acc) in enumerate(zip(locals_, accs, strict=True)):
            if len(ps):
                leapfrog_kick(ps.vel, acc, 0.5 * dt)
                leapfrog_drift(ps.pos, ps.vel, dt)
                self.indices[rank].invalidate_positions()
        # Re-decompose and migrate before the closing force evaluation.
        nonempty = [rank for rank, ps in enumerate(locals_) if len(ps)]
        merged_pos = np.concatenate([locals_[rank].pos for rank in nonempty])
        merged_w = np.concatenate([weights[rank] for rank in nonempty])
        sampler = ConcatStratifiedSampler(
            orders=[orders[rank] for rank in nonempty],
            counts=[len(locals_[rank]) for rank in nonempty],
        )
        with self.timers[0].measure("Decompose_Domain"):
            decomp = DomainDecomposition.fit(
                merged_pos,
                self.grid,
                weights=merged_w,
                sample=self.decomp_sample,
                index=sampler,
            )
        locals_ = self.exchange_particles(locals_, decomp)
        accs = self.forces(locals_, decomp)
        for ps, acc in zip(locals_, accs, strict=True):
            if len(ps):
                leapfrog_kick(ps.vel, acc, 0.5 * dt)
        return locals_, decomp, accs
