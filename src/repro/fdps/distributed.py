"""The distributed FDPS pipeline over the simulated communicator.

This is the multi-rank execution path the paper runs on Fugaku, executed
faithfully (same phases, same messages) on the in-process MPI:

1. **domain decomposition** — multisection over sampled particles, with
   per-particle work weights (Sec. 5.2: the decomposition minimizes the
   *sum* of gravity and hydro work);
2. **particle exchange** — every rank sends emigrants through the (flat or
   3-phase torus) alltoallv;
3. **local tree construction** per rank;
4. **LET exchange** — monopoles + boundary particles toward every remote
   domain;
5. **force calculation** — group-wise tree walks over local + imported
   matter;
6. a KDK **leapfrog step** built from those forces.

The driver is the integration test of the whole framework: forces computed
through the full distributed pipeline must match a single-rank global tree
at tree-code accuracy, with all communication visible in the CommStats
ledgers (used by the performance model's byte counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.comm import SimComm, TorusTopology
from repro.fdps.domain import DomainDecomposition, process_grid
from repro.fdps.interaction import InteractionCounter
from repro.fdps.let import exchange_let
from repro.fdps.particles import ParticleSet
from repro.fdps.tree import Octree
from repro.gravity.treegrav import tree_accel


@dataclass
class DistributedGravity:
    """Multi-rank gravity via the full FDPS pipeline.

    Parameters
    ----------
    n_ranks : number of simulated MPI ranks (main nodes).
    theta : opening angle for both the force walk and the LET export.
    use_torus : route the LET exchange through the 3-phase 3D alltoallv
        (requires ``n_ranks`` to factor into a torus; any count works —
        the factorization is the near-cubic one of ``process_grid``).
    """

    n_ranks: int
    theta: float = 0.4
    n_g: int = 128
    leaf_size: int = 16
    use_torus: bool = False
    mixed_precision: bool = False
    grid: tuple[int, int, int] = field(init=False)
    comm: SimComm = field(init=False)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("need at least one rank")
        self.grid = process_grid(self.n_ranks)
        topo = TorusTopology(self.grid) if self.use_torus else None
        self.comm = SimComm(self.n_ranks, topology=topo)

    # ----------------------------------------------------------------- phases
    def decompose(
        self, ps: ParticleSet, weights: np.ndarray | None = None
    ) -> tuple[DomainDecomposition, np.ndarray]:
        """Phase 1: fit the multisection and assign every particle a rank."""
        decomp = DomainDecomposition.fit(ps.pos, self.grid, weights=weights)
        return decomp, decomp.assign(ps.pos)

    def exchange_particles(
        self, locals_: list[ParticleSet], decomp: DomainDecomposition
    ) -> list[ParticleSet]:
        """Phase 2: move emigrants to their new owners via alltoallv.

        Each rank packs per-destination position/velocity/mass/pid buffers;
        delivery goes through the communicator so the byte ledger sees it.
        """
        p = self.n_ranks
        send: list[list[np.ndarray | None]] = [[None] * p for _ in range(p)]
        keep: list[ParticleSet] = []
        stash: dict[tuple[int, int], ParticleSet] = {}
        for src in range(p):
            ps = locals_[src]
            owner = decomp.assign(ps.pos)
            keep.append(ps.select(owner == src))
            for dst in range(p):
                if dst == src:
                    continue
                moving = ps.select(owner == dst)
                if len(moving) == 0:
                    continue
                send[src][dst] = moving.pos.copy()  # byte-counted payload
                stash[(src, dst)] = moving
        recv = (
            self.comm.alltoallv_3d(send, label="exchange_particles")
            if self.use_torus
            else self.comm.alltoallv(send, label="exchange_particles")
        )
        out: list[ParticleSet] = []
        for dst in range(p):
            merged = keep[dst]
            for src in range(p):
                if recv[dst][src] is not None:
                    merged = merged.append(stash[(src, dst)])
            out.append(merged)
        return out

    def forces(
        self,
        locals_: list[ParticleSet],
        decomp: DomainDecomposition,
        counter: InteractionCounter | None = None,
    ) -> list[np.ndarray]:
        """Phases 3-5: local trees, LET exchange, group-walk forces."""
        glo = np.min([ps.pos.min(axis=0) for ps in locals_ if len(ps)], axis=0)
        ghi = np.max([ps.pos.max(axis=0) for ps in locals_ if len(ps)], axis=0)
        trees: list[Octree | None] = []
        for ps in locals_:
            trees.append(
                Octree.build(ps.pos, ps.mass, leaf_size=self.leaf_size)
                if len(ps)
                else None
            )
        # Empty ranks export nothing; exchange_let wants a tree per rank, so
        # substitute a trivial far-away particle (zero mass = no force).
        safe_trees = [
            t
            if t is not None
            else Octree.build(np.array([[1e12, 1e12, 1e12]]), np.array([0.0]))
            for t in trees
        ]
        imports = exchange_let(
            self.comm, safe_trees, decomp, glo, ghi, self.theta, use_3d=self.use_torus
        )
        accs: list[np.ndarray] = []
        for rank, ps in enumerate(locals_):
            if len(ps) == 0:
                accs.append(np.zeros((0, 3)))
                continue
            res = tree_accel(
                ps.pos,
                ps.mass,
                ps.eps,
                theta=self.theta,
                n_g=self.n_g,
                leaf_size=self.leaf_size,
                counter=counter,
                mixed_precision=self.mixed_precision,
                extra_pos=imports[rank].pos,
                extra_mass=imports[rank].mass,
            )
            accs.append(res.acc)
        return accs

    # ------------------------------------------------------------ full driver
    def scatter(self, ps: ParticleSet) -> tuple[DomainDecomposition, list[ParticleSet]]:
        """Initial distribution of a global set onto the ranks."""
        decomp, owner = self.decompose(ps)
        return decomp, [ps.select(owner == r) for r in range(self.n_ranks)]

    @staticmethod
    def gather(locals_: list[ParticleSet]) -> ParticleSet:
        """Concatenate all ranks back into one global set (pid-sorted)."""
        out = locals_[0]
        for ps in locals_[1:]:
            out = out.append(ps)
        order = np.argsort(out.pid, kind="stable")
        out.reorder(order)
        return out

    def global_accel(self, ps: ParticleSet) -> np.ndarray:
        """One-shot distributed force evaluation, returned in pid order."""
        decomp, locals_ = self.scatter(ps)
        accs = self.forces(locals_, decomp)
        pid = np.concatenate([loc.pid for loc in locals_])
        acc = np.concatenate(accs)
        order = np.argsort(pid, kind="stable")
        # Return aligned to sorted-pid order of the *input*.
        inv = np.argsort(np.argsort(ps.pid, kind="stable"), kind="stable")
        return acc[order][inv]

    def step(
        self,
        locals_: list[ParticleSet],
        decomp: DomainDecomposition,
        dt: float,
        accs: list[np.ndarray] | None = None,
    ) -> tuple[list[ParticleSet], DomainDecomposition, list[np.ndarray]]:
        """One distributed KDK leapfrog step with re-decomposition.

        Returns (new locals, new decomposition, new accelerations) — the
        accelerations are returned so consecutive steps reuse the closing
        force evaluation as the next opening kick (standard KDK chaining).
        """
        if accs is None:
            accs = self.forces(locals_, decomp)
        for ps, acc in zip(locals_, accs):
            if len(ps):
                ps.vel += 0.5 * dt * acc
                ps.pos += dt * ps.vel
        # Re-decompose and migrate before the closing force evaluation.
        merged_pos = np.concatenate([ps.pos for ps in locals_ if len(ps)])
        decomp = DomainDecomposition.fit(merged_pos, self.grid)
        locals_ = self.exchange_particles(locals_, decomp)
        accs = self.forces(locals_, decomp)
        for ps, acc in zip(locals_, accs):
            if len(ps):
                ps.vel += 0.5 * dt * acc
        return locals_, decomp, accs
