"""Morton (Z-order) keys for 3D positions.

The tree in :mod:`repro.fdps.tree` is a linear octree over Morton-sorted
particles: sorting by key makes every octree node a *contiguous slice* of the
particle arrays, which is what allows fully vectorized node construction and
cache-friendly interaction groups (the same property the production FDPS
exploits).  Keys interleave 21 bits per axis into a 63-bit integer.
"""

from __future__ import annotations

import numpy as np

#: Bits of resolution per axis (3*21 = 63 bits fits in int64).
MORTON_BITS = 21


def _spread_bits(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each element so consecutive bits land 3 apart.

    Standard magic-number bit spreading (parallel prefix), vectorized over
    the whole array.
    """
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact_bits(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def morton_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Interleave three integer coordinate arrays into Morton keys (uint64)."""
    return (
        (_spread_bits(ix) << np.uint64(2))
        | (_spread_bits(iy) << np.uint64(1))
        | _spread_bits(iz)
    )


def morton_decode(key: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover the (ix, iy, iz) integer coordinates from Morton keys."""
    key = np.asarray(key, dtype=np.uint64)
    ix = _compact_bits(key >> np.uint64(2))
    iy = _compact_bits(key >> np.uint64(1))
    iz = _compact_bits(key)
    return ix, iy, iz


def quantize(
    pos: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map positions in the cube [lo, hi) onto the 2^21 integer grid."""
    span = np.maximum(hi - lo, 1e-300)
    scaled = (pos - lo) / span * (1 << MORTON_BITS)
    grid = np.clip(scaled.astype(np.int64), 0, (1 << MORTON_BITS) - 1)
    return grid[:, 0], grid[:, 1], grid[:, 2]


def morton_keys(pos: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Morton keys of positions within the bounding cube [lo, hi)."""
    ix, iy, iz = quantize(np.asarray(pos, dtype=np.float64), lo, hi)
    return morton_encode(ix, iy, iz)
