"""Interaction-list machinery and FLOP accounting.

The production code measures performance by *counting interactions* and
multiplying by the per-interaction operation counts of Table 4 (gravity 27,
density/pressure 73, hydro force 101) — Sec. 4.3: "we counted the number of
interactions that evaluate gravity and hydro force, multiplied the number of
operations of those interactions, and finally divided them by the measured
timings."  :class:`InteractionCounter` reproduces that ledger and is threaded
through every kernel in :mod:`repro.gravity` and :mod:`repro.sph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.tree import Octree

#: Operations per pairwise interaction (Table 4).
OPS_PER_INTERACTION = {
    "gravity": 27,
    "hydro_density": 73,
    "hydro_force": 101,
}


@dataclass
class InteractionCounter:
    """Counts pairwise interactions per kernel kind and converts to FLOPs."""

    counts: dict[str, int] = field(default_factory=dict)
    list_lengths: dict[str, list[int]] = field(default_factory=dict)

    def add(self, kind: str, n_targets: int, n_sources: int) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + int(n_targets) * int(n_sources)
        self.list_lengths.setdefault(kind, []).append(int(n_sources))

    def interactions(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def flops(self, kind: str | None = None) -> int:
        """Total FLOPs, optionally for one kernel kind."""
        if kind is not None:
            return self.counts.get(kind, 0) * OPS_PER_INTERACTION.get(kind, 0)
        return sum(
            c * OPS_PER_INTERACTION.get(k, 0) for k, c in self.counts.items()
        )

    def mean_list_length(self, kind: str) -> float:
        ll = self.list_lengths.get(kind, [])
        return float(np.mean(ll)) if ll else 0.0

    def reset(self) -> None:
        self.counts.clear()
        self.list_lengths.clear()


def make_groups(tree: Octree, n_g: int) -> list[tuple[int, int]]:
    """Interaction groups: Morton-contiguous slices of at most ``n_g`` targets.

    ``n_g`` is the group size of Sec. 5.2.4: large groups amortize the tree
    walk over many targets but lengthen the shared interaction list (extra
    work); the paper found 2048 best on Fugaku and 65536 on the GPU machine.
    """
    return tree.group_slices(n_g)


def walk_tree_for_group(
    tree: Octree, start: int, end: int, theta: float
) -> tuple[np.ndarray, np.ndarray]:
    """Interaction list for one group: (accepted node ids, particle indices).

    Particle indices refer to the *original* (pre-sort) ordering; they
    include the group's own members (self-interaction is masked in the
    kernels).
    """
    lo, hi = tree.group_box(start, end)
    return tree.walk_box(lo, hi, theta)
