"""Linear Barnes–Hut octree with monopole moments.

Construction follows the production FDPS strategy: particles are sorted by
Morton key so that every octree node corresponds to a contiguous slice of the
sorted arrays.  Node masses and centres of mass are then O(1) per node via
prefix sums, and tree *walks* process whole frontiers of nodes per NumPy call
(wave traversal) instead of visiting nodes one at a time.

The multipole acceptance criterion (MAC) is the group-box variant used by
FDPS: a node of side :math:`s` is accepted as a monopole for a target group
if :math:`s / d < \\theta`, with :math:`d` the distance from the node's
centre of mass to the closest point of the group's bounding box.  Walks
therefore serve both the force calculation (group = interaction group of
``n_g`` particles, Sec. 5.2.4) and the LET export construction (group =
remote domain box, Sec. 5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.morton import MORTON_BITS, morton_keys


@dataclass
class Octree:
    """A built octree over one set of particles (see :meth:`build`)."""

    # Geometry of the enclosing cube.
    root_lo: np.ndarray
    root_side: float
    # Per-node arrays, root is node 0.
    node_center: np.ndarray      # (M, 3) geometric centres
    node_side: np.ndarray        # (M,) cube side lengths
    node_com: np.ndarray         # (M, 3) centres of mass
    node_mass: np.ndarray        # (M,)
    node_first: np.ndarray       # (M,) first particle (sorted order)
    node_count: np.ndarray       # (M,) particle count
    node_children: np.ndarray    # (M, 8) child node ids, -1 where absent
    node_is_leaf: np.ndarray     # (M,) bool
    # Permutation: sorted index -> original index.
    order: np.ndarray
    sorted_pos: np.ndarray
    sorted_mass: np.ndarray
    leaf_size: int

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        pos: np.ndarray,
        mass: np.ndarray,
        leaf_size: int = 16,
        pad: float = 1e-3,
    ) -> "Octree":
        """Build the tree over ``pos``/``mass``.

        ``leaf_size`` bounds the number of particles per leaf; smaller values
        deepen the tree (cheaper interaction lists, costlier walks) — this is
        one half of the ``n_g`` trade-off discussed in Sec. 5.2.4.
        """
        pos = np.ascontiguousarray(pos, dtype=np.float64)
        mass = np.ascontiguousarray(mass, dtype=np.float64)
        n = len(pos)
        if n == 0:
            raise ValueError("cannot build a tree over zero particles")

        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        side = float(max(np.max(hi - lo), 1e-12)) * (1.0 + pad)
        center = 0.5 * (lo + hi)
        root_lo = center - 0.5 * side

        keys = morton_keys(pos, root_lo, root_lo + side)
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        spos = pos[order]
        smass = mass[order]

        # Prefix sums give O(1) monopole moments for any contiguous slice.
        pm = np.concatenate([[0.0], np.cumsum(smass)])
        pmx = np.concatenate([np.zeros((1, 3)), np.cumsum(smass[:, None] * spos, axis=0)])

        # Breadth-first vectorized construction over key prefixes.
        centers: list[np.ndarray] = []
        sides: list[float] = []
        firsts: list[int] = []
        counts: list[int] = []
        children: list[np.ndarray] = []
        leaf_flags: list[bool] = []

        def _new_node(level: int, start: int, end: int, clo: np.ndarray, cside: float) -> int:
            idx = len(firsts)
            centers.append(clo + 0.5 * cside)
            sides.append(cside)
            firsts.append(start)
            counts.append(end - start)
            children.append(np.full(8, -1, dtype=np.int64))
            leaf_flags.append(True)
            return idx

        root = _new_node(0, 0, n, root_lo, side)
        frontier = [(root, 0, 0, n, root_lo, side)]
        while frontier:
            nxt: list[tuple[int, int, int, int, np.ndarray, float]] = []
            for node, level, start, end, nlo, nside in frontier:
                if end - start <= leaf_size or level >= MORTON_BITS - 1:
                    continue
                leaf_flags[node] = False
                shift = np.uint64(3 * (MORTON_BITS - 1 - level))
                octant = ((skeys[start:end] >> shift) & np.uint64(7)).astype(np.int64)
                # Morton order makes octants non-decreasing within the slice.
                bounds = np.searchsorted(octant, np.arange(9))
                half = 0.5 * nside
                for oct_id in range(8):
                    s = start + bounds[oct_id]
                    e = start + bounds[oct_id + 1]
                    if e <= s:
                        continue
                    off = np.array(
                        [(oct_id >> 2) & 1, (oct_id >> 1) & 1, oct_id & 1],
                        dtype=np.float64,
                    )
                    clo = nlo + off * half
                    child = _new_node(level + 1, s, e, clo, half)
                    children[node][oct_id] = child
                    nxt.append((child, level + 1, s, e, clo, half))
            frontier = nxt

        node_first = np.asarray(firsts, dtype=np.int64)
        node_count = np.asarray(counts, dtype=np.int64)
        node_mass = pm[node_first + node_count] - pm[node_first]
        mx = pmx[node_first + node_count] - pmx[node_first]
        safe = np.maximum(node_mass, 1e-300)
        node_com = mx / safe[:, None]

        return cls(
            root_lo=root_lo,
            root_side=side,
            node_center=np.asarray(centers),
            node_side=np.asarray(sides),
            node_com=node_com,
            node_mass=node_mass,
            node_first=node_first,
            node_count=node_count,
            node_children=np.asarray(children),
            node_is_leaf=np.asarray(leaf_flags, dtype=bool),
            order=order,
            sorted_pos=spos,
            sorted_mass=smass,
            leaf_size=leaf_size,
        )

    @property
    def n_nodes(self) -> int:
        return len(self.node_mass)

    @property
    def n_particles(self) -> int:
        return len(self.order)

    # ------------------------------------------------------------------ walks
    def walk_box(
        self, box_lo: np.ndarray, box_hi: np.ndarray, theta: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Wave traversal against an axis-aligned target box.

        Returns ``(accepted_nodes, leaf_particles)``:

        * ``accepted_nodes`` — node ids whose monopole may be used for any
          target inside the box (MAC satisfied);
        * ``leaf_particles`` — indices (into the *original* particle order)
          of particles in leaves that had to be fully opened.

        The whole frontier is evaluated per iteration with vectorized
        arithmetic; Python-level iteration count is only the tree depth.
        """
        box_lo = np.asarray(box_lo, dtype=np.float64)
        box_hi = np.asarray(box_hi, dtype=np.float64)
        accepted: list[np.ndarray] = []
        leaf_slices: list[tuple[int, int]] = []

        frontier = np.array([0], dtype=np.int64)
        while frontier.size:
            com = self.node_com[frontier]
            nearest = np.clip(com, box_lo, box_hi)
            d = np.sqrt(np.sum((com - nearest) ** 2, axis=1))
            side = self.node_side[frontier]
            ok = side < theta * d  # MAC; d = 0 (overlap) always fails
            accepted.append(frontier[ok])
            rest = frontier[~ok]
            if rest.size == 0:
                break
            is_leaf = self.node_is_leaf[rest]
            for nid in rest[is_leaf]:
                leaf_slices.append(
                    (int(self.node_first[nid]), int(self.node_first[nid] + self.node_count[nid]))
                )
            kids = self.node_children[rest[~is_leaf]].ravel()
            frontier = kids[kids >= 0]

        acc = (
            np.concatenate(accepted)
            if accepted
            else np.empty(0, dtype=np.int64)
        )
        if leaf_slices:
            parts = np.concatenate([np.arange(s, e) for s, e in leaf_slices])
            parts = self.order[parts]
        else:
            parts = np.empty(0, dtype=np.int64)
        return acc, parts

    def group_slices(self, n_g: int) -> list[tuple[int, int]]:
        """Contiguous Morton-order slices of at most ``n_g`` particles.

        Because the particles are Morton sorted, each slice is spatially
        compact — these are the interaction groups of the FDPS force loop.
        """
        n = self.n_particles
        bounds = [*range(0, n, n_g), n]
        return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]

    def group_box(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        """Bounding box of a sorted-order particle slice."""
        sl = self.sorted_pos[start:end]
        return sl.min(axis=0), sl.max(axis=0)
