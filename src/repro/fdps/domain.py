"""Multisection domain decomposition (FDPS style).

The domain is cut into ``px`` slabs along x by weighted quantiles of the
particle distribution, each slab into ``py`` columns along y, and each column
into ``pz`` cells along z, so every rank receives (approximately) the same
number of particles.  Because the Model MW galaxy is strongly concentrated
toward the centre and the mid-plane, the central domains come out long and
thin — exactly the morphology shown in Fig. 4, which in turn drives the
particle-exchange surface costs discussed in Sec. 5.2.1.

Weights allow load balancing on estimated per-particle cost rather than raw
counts (the paper tunes the decomposition to minimise the *sum* of gravity
and hydro work, Sec. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _weighted_quantile_cuts(x: np.ndarray, w: np.ndarray, nparts: int) -> np.ndarray:
    """Cut positions so each of ``nparts`` buckets holds ~equal total weight."""
    if nparts == 1:
        return np.array([-np.inf, np.inf])
    order = np.argsort(x, kind="stable")
    cw = np.cumsum(w[order])
    total = cw[-1] if len(cw) else 0.0
    if total <= 0:
        # Degenerate: fall back to equal-count cuts.
        cuts = np.quantile(x, np.linspace(0, 1, nparts + 1)[1:-1]) if len(x) else np.zeros(nparts - 1)
    else:
        targets = total * np.arange(1, nparts) / nparts
        idx = np.searchsorted(cw, targets)
        idx = np.clip(idx, 0, len(order) - 1)
        cuts = x[order[idx]]
    return np.concatenate([[-np.inf], np.sort(cuts), [np.inf]])


def multisection_bounds(
    pos: np.ndarray,
    grid: tuple[int, int, int],
    weights: np.ndarray | None = None,
    sample: int | None = 100_000,
    rng: np.random.Generator | None = None,
    index=None,
) -> np.ndarray:
    """Compute multisection domain boundaries.

    Parameters
    ----------
    pos : (N, 3) positions.
    grid : (px, py, pz) process grid; ``px*py*pz`` ranks.
    weights : optional per-particle work estimate; equal weights if None.
    sample : decompose on a subsample of this size (FDPS samples particles
        to keep decomposition cost independent of N); ``None`` uses every
        particle.
    index : optional :class:`repro.accel.SpatialIndex`; when its cached
        space-filling order covers these particles, the subsample is drawn
        stratified along that order (every k-th particle of the Morton/cell
        sort — spatially even by construction) instead of via ``rng``.

    Returns
    -------
    bounds : (px, py, pz, 3, 2) array; ``bounds[i,j,k,d]`` is the (lo, hi)
        interval of domain (i, j, k) along axis d.  Outer faces are +-inf so
        every point in space maps to exactly one domain.
    """
    pos = np.asarray(pos, dtype=np.float64)
    px, py, pz = grid
    n = len(pos)
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if sample is not None and n > sample:
        pick = index.stratified_sample(sample, n) if index is not None else None
        if pick is None:
            rng = rng or np.random.default_rng(12345)
            pick = rng.choice(n, size=sample, replace=False)
        pos_s, w_s = pos[pick], w[pick]
    else:
        pos_s, w_s = pos, w

    bounds = np.empty((px, py, pz, 3, 2), dtype=np.float64)
    xcuts = _weighted_quantile_cuts(pos_s[:, 0], w_s, px)
    for i in range(px):
        in_x = (pos_s[:, 0] >= xcuts[i]) & (pos_s[:, 0] < xcuts[i + 1])
        ycuts = _weighted_quantile_cuts(pos_s[in_x, 1], w_s[in_x], py)
        for j in range(py):
            in_xy = in_x & (pos_s[:, 1] >= ycuts[j]) & (pos_s[:, 1] < ycuts[j + 1])
            zcuts = _weighted_quantile_cuts(pos_s[in_xy, 2], w_s[in_xy], pz)
            for k in range(pz):
                bounds[i, j, k, 0] = (xcuts[i], xcuts[i + 1])
                bounds[i, j, k, 1] = (ycuts[j], ycuts[j + 1])
                bounds[i, j, k, 2] = (zcuts[k], zcuts[k + 1])
    return bounds


@dataclass
class DomainDecomposition:
    """A multisection decomposition plus rank assignment helpers."""

    grid: tuple[int, int, int]
    bounds: np.ndarray  # (px, py, pz, 3, 2)

    @classmethod
    def fit(
        cls,
        pos: np.ndarray,
        grid: tuple[int, int, int],
        weights: np.ndarray | None = None,
        sample: int | None = 100_000,
        rng: np.random.Generator | None = None,
        index=None,
    ) -> "DomainDecomposition":
        return cls(
            grid=grid,
            bounds=multisection_bounds(pos, grid, weights, sample, rng, index=index),
        )

    @property
    def n_domains(self) -> int:
        px, py, pz = self.grid
        return px * py * pz

    def rank_of(self, ijk: tuple[int, int, int]) -> int:
        """Flatten grid coordinates to a rank (x fastest-varying last)."""
        px, py, pz = self.grid
        i, j, k = ijk
        return (i * py + j) * pz + k

    def ijk_of(self, rank: int) -> tuple[int, int, int]:
        px, py, pz = self.grid
        k = rank % pz
        j = (rank // pz) % py
        i = rank // (pz * py)
        return i, j, k

    def assign(self, pos: np.ndarray) -> np.ndarray:
        """Rank id for every position (vectorized searchsorted per axis)."""
        pos = np.asarray(pos, dtype=np.float64)
        px, py, pz = self.grid
        xcuts = self.bounds[:, 0, 0, 0, 0]  # lo edges of the x slabs
        i = np.clip(np.searchsorted(xcuts, pos[:, 0], side="right") - 1, 0, px - 1)
        j = np.zeros(len(pos), dtype=np.int64)
        k = np.zeros(len(pos), dtype=np.int64)
        for ii in range(px):
            m = i == ii
            if not m.any():
                continue
            ycuts = self.bounds[ii, :, 0, 1, 0]
            j[m] = np.clip(np.searchsorted(ycuts, pos[m, 1], side="right") - 1, 0, py - 1)
            for jj in range(py):
                mm = m & (j == jj)
                if not mm.any():
                    continue
                zcuts = self.bounds[ii, jj, :, 2, 0]
                k[mm] = np.clip(
                    np.searchsorted(zcuts, pos[mm, 2], side="right") - 1, 0, pz - 1
                )
        return (i * py + j) * pz + k

    def domain_box(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) corners of a rank's domain (may contain +-inf faces)."""
        i, j, k = self.ijk_of(rank)
        b = self.bounds[i, j, k]
        return b[:, 0].copy(), b[:, 1].copy()

    def finite_domain_box(
        self, rank: int, global_lo: np.ndarray, global_hi: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Domain box with infinite faces clipped to the global bounding box."""
        lo, hi = self.domain_box(rank)
        return np.maximum(lo, global_lo), np.minimum(hi, global_hi)

    def slice_y0(self, global_lo: np.ndarray, global_hi: np.ndarray) -> list[np.ndarray]:
        """Rectangles (x0, x1, z0, z1) of domains crossing the y=0 plane.

        This regenerates the Fig. 4 view of the decomposition.
        """
        rects = []
        for rank in range(self.n_domains):
            lo, hi = self.finite_domain_box(rank, global_lo, global_hi)
            if lo[1] <= 0.0 <= hi[1]:
                rects.append(np.array([lo[0], hi[0], lo[2], hi[2]]))
        return rects

    def surface_areas(self, global_lo: np.ndarray, global_hi: np.ndarray) -> np.ndarray:
        """Total surface area of each domain (drives exchange volume, Sec. 5.2.1)."""
        areas = np.empty(self.n_domains)
        for rank in range(self.n_domains):
            lo, hi = self.finite_domain_box(rank, global_lo, global_hi)
            d = np.maximum(hi - lo, 0.0)
            areas[rank] = 2.0 * (d[0] * d[1] + d[1] * d[2] + d[0] * d[2])
        return areas


def process_grid(n_ranks: int) -> tuple[int, int, int]:
    """Near-cubic factorization of ``n_ranks`` into (px, py, pz), px>=py>=pz.

    Mirrors the node-shape choice used for the 3D torus mapping: the three
    factors are as close to ``n^{1/3}`` as possible.
    """
    best: tuple[int, int, int] | None = None
    for px in range(1, n_ranks + 1):
        if n_ranks % px:
            continue
        rem = n_ranks // px
        for py in range(1, rem + 1):
            if rem % py:
                continue
            pz = rem // py
            trio = tuple(sorted((px, py, pz), reverse=True))
            if best is None or _grid_badness(trio) < _grid_badness(best):
                best = trio
    assert best is not None
    return best


def _grid_badness(grid: tuple[int, int, int]) -> float:
    """Spread of log-factors; 0 for a perfect cube."""
    logs = np.log(np.asarray(grid, dtype=np.float64))
    return float(logs.max() - logs.min())
