"""A Python re-implementation of the FDPS particle-simulator framework.

FDPS (Framework for Developing Particle Simulators, Iwasawa et al.) factors a
massively parallel particle code into five reusable services, all of which
this package provides:

* **particle containers** — :mod:`repro.fdps.particles` (structure-of-arrays
  storage, the layout PIKG-generated kernels expect);
* **domain decomposition** — :mod:`repro.fdps.domain` (multisection with
  weighted sampling, the scheme whose thin central domains appear in Fig. 4);
* **particle exchange & communication** — :mod:`repro.fdps.comm` (a simulated
  MPI with alltoallv, communicator split, and the 3D-torus three-phase
  alltoallv of Sec. 3.4 whose time complexity is O(p^{1/3}));
* **tree construction** — :mod:`repro.fdps.tree` (Morton-ordered Barnes–Hut
  octree with monopole moments);
* **local essential tree (LET) exchange and interaction calculation** —
  :mod:`repro.fdps.let` and :mod:`repro.fdps.interaction` (group-wise tree
  walks with the interaction-group size ``n_g`` trade-off of Sec. 5.2.4).
"""

from repro.fdps.particles import ParticleSet, ParticleType
from repro.fdps.morton import morton_encode, morton_decode, morton_keys
from repro.fdps.tree import Octree
from repro.fdps.domain import DomainDecomposition, multisection_bounds
from repro.fdps.comm import SimComm, CommStats, TorusTopology
from repro.fdps.let import build_let_exports, exchange_let
from repro.fdps.interaction import InteractionCounter, make_groups, walk_tree_for_group
from repro.fdps.distributed import DistributedGravity
from repro.fdps.io import save_snapshot, load_snapshot

__all__ = [
    "ParticleSet",
    "ParticleType",
    "morton_encode",
    "morton_decode",
    "morton_keys",
    "Octree",
    "DomainDecomposition",
    "multisection_bounds",
    "SimComm",
    "CommStats",
    "TorusTopology",
    "build_let_exports",
    "exchange_let",
    "InteractionCounter",
    "make_groups",
    "walk_tree_for_group",
    "DistributedGravity",
    "save_snapshot",
    "load_snapshot",
]
