"""A Python re-implementation of the FDPS particle-simulator framework.

FDPS (Framework for Developing Particle Simulators, Iwasawa et al.) factors a
massively parallel particle code into five reusable services, all of which
this package provides:

* **particle containers** — :mod:`repro.fdps.particles` (structure-of-arrays
  storage, the layout PIKG-generated kernels expect);
* **domain decomposition** — :mod:`repro.fdps.domain` (multisection with
  weighted sampling, the scheme whose thin central domains appear in Fig. 4);
* **particle exchange & communication** — :mod:`repro.fdps.comm` (a simulated
  MPI with alltoallv, communicator split, and the 3D-torus three-phase
  alltoallv of Sec. 3.4 whose time complexity is O(p^{1/3}));
* **tree construction** — :mod:`repro.fdps.tree` (Morton-ordered Barnes–Hut
  octree with monopole moments);
* **local essential tree (LET) exchange and interaction calculation** —
  :mod:`repro.fdps.let` and :mod:`repro.fdps.interaction` (group-wise tree
  walks with the interaction-group size ``n_g`` trade-off of Sec. 5.2.4).

Coupled runs and cross-rank SN regions
--------------------------------------

:class:`DistributedGravity` is also the communication driver of the
surrogate-coupled multi-rank runner
(:class:`~repro.core.runner.coupled.CoupledRunner`).  Beyond migration and
LET traffic it exports SN-region *ghosts*: when a supernova's sampling
cube pokes past its owner rank's domain box
(:meth:`~repro.fdps.domain.DomainDecomposition.domain_box`), the owner
cannot extract a complete region —
:func:`repro.surrogate.voxelize.extract_region` raises
``RegionIncompleteError`` rather than silently truncating.
:meth:`DistributedGravity.exchange_region_ghosts` is the remedy: one
collective (label ``region_ghost``, flat or 3-phase torus alltoallv, timer
``Exchange_Region``) in which every non-owner rank packs its in-cube gas
through the :mod:`repro.fdps.particles` wire format and the owner merges
the blocks back into a pid-sorted region identical to a single-rank
extraction.  ``tests/core/test_coupled.py`` pins the resulting byte
ledgers; ``benchmarks/bench_coupled_scaling.py`` prices them on the
Sec. 5.2 network model.
"""

from repro.fdps.particles import ParticleSet, ParticleType
from repro.fdps.morton import morton_encode, morton_decode, morton_keys
from repro.fdps.tree import Octree
from repro.fdps.domain import DomainDecomposition, multisection_bounds
from repro.fdps.comm import SimComm, CommStats, TorusTopology
from repro.fdps.let import build_let_exports, exchange_let
from repro.fdps.interaction import InteractionCounter, make_groups, walk_tree_for_group
from repro.fdps.distributed import DistributedGravity
from repro.fdps.io import save_snapshot, load_snapshot

__all__ = [
    "ParticleSet",
    "ParticleType",
    "morton_encode",
    "morton_decode",
    "morton_keys",
    "Octree",
    "DomainDecomposition",
    "multisection_bounds",
    "SimComm",
    "CommStats",
    "TorusTopology",
    "build_let_exports",
    "exchange_let",
    "InteractionCounter",
    "make_groups",
    "walk_tree_for_group",
    "DistributedGravity",
    "save_snapshot",
    "load_snapshot",
]
