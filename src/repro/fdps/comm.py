"""Simulated MPI: ranked mailboxes, collectives, and the 3D torus alltoallv.

The paper's scalability hinges on two communication devices that this module
reproduces *algorithmically* (the transport is an in-process loop, but the
message pattern, byte counts and hop structure are the real ones):

* an **MPI communicator split** into *main* and *pool* sub-communicators
  (Sec. 3.1) — :meth:`SimComm.split`;
* the **three-phase 3D ``MPI_Alltoallv``** (Sec. 3.4): ranks are arranged on
  a (qx, qy, qz) grid matching the torus; a flat all-to-all is replaced by
  three axis-wise all-to-alls, so each rank only ever talks to the
  :math:`O(p^{1/3})` ranks in its own line — :meth:`SimComm.alltoallv_3d`.

Every operation updates a :class:`CommStats` ledger (messages, bytes,
byte-hops, per-rank maxima) which feeds the performance model in
:mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.trace import NULL_TRACER


@dataclass
class CommStats:
    """Accumulated communication counters for one labelled operation class."""

    n_calls: int = 0
    n_messages: int = 0
    bytes_total: int = 0
    byte_hops: int = 0           # sum over messages of nbytes * torus hops
    max_bytes_per_rank: int = 0  # max over ranks of bytes sent in one call
    #: Sum over calls of the busiest rank's bytes — the bandwidth-bound
    #: critical path of the whole ledger (each call completes no sooner than
    #: its most loaded rank finishes injecting).
    critical_bytes: int = 0

    def merge_call(self, per_rank_bytes: np.ndarray, n_messages: int, byte_hops: int) -> None:
        self.n_calls += 1
        self.n_messages += int(n_messages)
        self.bytes_total += int(per_rank_bytes.sum())
        self.byte_hops += int(byte_hops)
        call_max = int(per_rank_bytes.max(initial=0))
        self.max_bytes_per_rank = max(self.max_bytes_per_rank, call_max)
        self.critical_bytes += call_max


@dataclass
class TorusTopology:
    """A 3D torus of shape (qx, qy, qz) with wrap-around hop metric.

    Stands in for Fugaku's TofuD (whose 6D mesh/torus is conventionally used
    as a folded 3D torus by the rank mapping the paper adopts: the three MPI
    communicators of the 3D alltoallv "match the 3D torus node configuration
    and domain decomposition").
    """

    dims: tuple[int, int, int]

    @property
    def n_ranks(self) -> int:
        qx, qy, qz = self.dims
        return qx * qy * qz

    def coords(self, rank: int) -> tuple[int, int, int]:
        qx, qy, qz = self.dims
        z = rank % qz
        y = (rank // qz) % qy
        x = rank // (qz * qy)
        return x, y, z

    def rank(self, coords: tuple[int, int, int]) -> int:
        qx, qy, qz = self.dims
        x, y, z = coords
        return (x * qy + y) * qz + z

    def hops(self, a: int, b: int) -> int:
        """Minimal torus (wrap-around Manhattan) distance between two ranks."""
        ca, cb = self.coords(a), self.coords(b)
        total = 0
        for d, q in zip((0, 1, 2), self.dims, strict=True):
            diff = abs(ca[d] - cb[d])
            total += min(diff, q - diff)
        return total


def _nbytes(arr: np.ndarray | None) -> int:
    return 0 if arr is None else int(arr.nbytes)


class SimComm:
    """A communicator over ``n_ranks`` simulated processes.

    Data for rank *r* lives at index *r* of the Python lists passed to the
    collectives — a BSP-style "sequential SPMD" execution in which each
    collective performs the full exchange for all ranks at once.  This keeps
    the algorithms (and their counters) identical to the MPI versions while
    remaining debuggable single-process Python.
    """

    def __init__(self, n_ranks: int, topology: TorusTopology | None = None,
                 tracer=None) -> None:
        if n_ranks <= 0:
            raise ValueError("communicator needs at least one rank")
        self.n_ranks = n_ranks
        self.topology = topology
        if topology is not None and topology.n_ranks != n_ranks:
            raise ValueError("topology size does not match communicator size")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats: dict[str, CommStats] = {}
        self._mailboxes: list[list[tuple[int, int, np.ndarray]]] = [
            [] for _ in range(n_ranks)
        ]

    # ------------------------------------------------------------------ stats
    def _stat(self, label: str) -> CommStats:
        if label not in self.stats:
            self.stats[label] = CommStats()
        return self.stats[label]

    def _merge(self, label: str, per_rank_bytes: np.ndarray, n_messages: int,
               byte_hops: int, t0: float) -> None:
        """One ledger row update + the matching comm-category span.

        Span attrs mirror the :class:`CommStats` increments exactly, so a
        trace's per-label byte sums reproduce the ledger by construction.
        """
        self._stat(label).merge_call(per_rank_bytes, n_messages, byte_hops)
        tr = self.tracer
        if tr.enabled:
            now = tr.now()
            tr.span_at(
                label, t0, now - t0, cat="comm",
                bytes=int(per_rank_bytes.sum()),
                messages=int(n_messages),
                critical_bytes=int(per_rank_bytes.max(initial=0)),
            )

    def reset_stats(self) -> None:
        self.stats.clear()

    # ----------------------------------------------------------- communicator
    def split(self, colors: list[int]) -> dict[int, "SubComm"]:
        """Split into sub-communicators by color (MPI_Comm_split).

        Returns a map color -> :class:`SubComm`; rank order within a color
        follows world-rank order (keys = 0..len-1 as in MPI).
        """
        if len(colors) != self.n_ranks:
            raise ValueError("need one color per rank")
        out: dict[int, SubComm] = {}
        for color in sorted(set(colors)):
            members = [r for r, c in enumerate(colors) if c == color]
            out[color] = SubComm(self, members)
        return out

    # --------------------------------------------------------- point to point
    def send(self, src: int, dst: int, arr: np.ndarray, tag: int = 0,
             label: str = "p2p") -> None:
        """Post a message; delivery happens at the matching :meth:`recv`.

        ``label`` picks the :class:`CommStats` ledger row — the pool traffic
        of :mod:`repro.core.pool` uses ``"pool_p2p"`` so the perf model can
        price main<->pool transfers separately from intra-main exchanges.
        """
        t0 = self.tracer.now()
        per_rank = np.zeros(self.n_ranks, dtype=np.int64)
        per_rank[src] = _nbytes(arr)
        hops = self.topology.hops(src, dst) if self.topology else 1
        self._mailboxes[dst].append((src, tag, arr))
        self._merge(label, per_rank, 1, _nbytes(arr) * hops, t0)

    def recv(self, dst: int, src: int | None = None, tag: int | None = None) -> np.ndarray | None:
        """Pop the first matching message for ``dst`` (None if empty)."""
        box = self._mailboxes[dst]
        for i, (s, t, arr) in enumerate(box):
            if (src is None or s == src) and (tag is None or t == tag):
                box.pop(i)
                return arr
        return None

    def pending(self, dst: int) -> int:
        return len(self._mailboxes[dst])

    # ------------------------------------------------------------ collectives
    def alltoallv(
        self,
        send: list[list[np.ndarray | None]],
        label: str = "alltoallv",
    ) -> list[list[np.ndarray | None]]:
        """Flat all-to-all: ``recv[dst][src] = send[src][dst]``.

        Every pair with a non-empty buffer is one message (the naive O(p)
        pattern the 3D algorithm avoids).
        """
        p = self.n_ranks
        if len(send) != p:
            raise ValueError("send matrix must have one row per rank")
        t0 = self.tracer.now()
        per_rank = np.zeros(p, dtype=np.int64)
        n_msg = 0
        byte_hops = 0
        recv: list[list[np.ndarray | None]] = [[None] * p for _ in range(p)]
        for src in range(p):
            row = send[src]
            if len(row) != p:
                raise ValueError("send row length must equal n_ranks")
            for dst in range(p):
                buf = row[dst]
                if buf is None:
                    continue
                nb = _nbytes(buf)
                per_rank[src] += nb
                if src != dst:
                    n_msg += 1
                    hops = self.topology.hops(src, dst) if self.topology else 1
                    byte_hops += nb * hops
                recv[dst][src] = buf
        self._merge(label, per_rank, n_msg, byte_hops, t0)
        return recv

    def alltoallv_3d(
        self,
        send: list[list[np.ndarray | None]],
        label: str = "alltoallv_3d",
    ) -> list[list[np.ndarray | None]]:
        """Three-phase torus alltoallv (Sec. 3.4).

        A message from (x1,y1,z1) to (x2,y2,z2) is staged x -> y -> z: it
        first travels within the x-line to (x2,y1,z1), then within the y-line
        to (x2,y2,z1), then within the z-line to its destination.  Each phase
        is an alltoallv over lines of length q ~ p^{1/3}, so every rank
        exchanges messages with only O(p^{1/3}) peers per phase, at the cost
        of forwarding (each payload crosses the wire up to three times).

        Requires a :class:`TorusTopology`.  Delivery is verified against the
        flat :meth:`alltoallv` in the test suite.
        """
        if self.topology is None:
            raise RuntimeError("alltoallv_3d requires a torus topology")
        topo = self.topology
        p = self.n_ranks
        # in_transit[holder] = list of (final_src, final_dst, payload)
        in_transit: list[list[tuple[int, int, np.ndarray]]] = [[] for _ in range(p)]
        for src in range(p):
            for dst in range(p):
                buf = send[src][dst]
                if buf is not None:
                    in_transit[src].append((src, dst, buf))

        for axis in range(3):
            t0 = self.tracer.now()
            per_rank = np.zeros(p, dtype=np.int64)
            n_msg = 0
            byte_hops = 0
            nxt: list[list[tuple[int, int, np.ndarray]]] = [[] for _ in range(p)]
            # Group per (holder -> hop target) to model message aggregation:
            # all payloads moving between the same pair in this phase share
            # one message, exactly like packing one MPI_Alltoallv buffer.
            pair_bytes: dict[tuple[int, int], int] = {}
            for holder in range(p):
                hc = topo.coords(holder)
                for (src, dst, buf) in in_transit[holder]:
                    dc = topo.coords(dst)
                    target_coords = tuple(
                        dc[d] if d <= axis else hc[d] for d in range(3)
                    )
                    target = topo.rank(target_coords)  # move along `axis` only
                    nxt[target].append((src, dst, buf))
                    if target != holder:
                        nb = _nbytes(buf)
                        per_rank[holder] += nb
                        pair_bytes[(holder, target)] = pair_bytes.get((holder, target), 0) + nb
            for (a, b), nb in pair_bytes.items():
                n_msg += 1
                byte_hops += nb * topo.hops(a, b)
            self._merge(label, per_rank, n_msg, byte_hops, t0)
            in_transit = nxt

        recv: list[list[np.ndarray | None]] = [[None] * p for _ in range(p)]
        for holder in range(p):
            for (src, dst, buf) in in_transit[holder]:
                if dst != holder:
                    raise AssertionError("3D alltoallv routing failed to converge")
                recv[dst][src] = buf
        return recv

    def allgather(self, values: list[np.ndarray], label: str = "allgather") -> list[list[np.ndarray]]:
        """Every rank receives every rank's buffer."""
        send = [[values[src] for _dst in range(self.n_ranks)] for src in range(self.n_ranks)]
        recv = self.alltoallv(send, label=label)
        return [[recv[dst][src] for src in range(self.n_ranks)] for dst in range(self.n_ranks)]

    def allreduce_sum(self, values: list[np.ndarray], label: str = "allreduce") -> np.ndarray:
        """Sum of per-rank buffers (same result on every rank)."""
        gathered = self.allgather(values, label=label)
        return np.sum(np.stack(gathered[0]), axis=0)


@dataclass
class SubComm:
    """A sub-communicator produced by :meth:`SimComm.split`.

    Translates local ranks (0..size-1) to world ranks of the parent; the
    paper uses one of these for the main integration and one for the pool.
    """

    world: SimComm
    members: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    def world_rank(self, local: int) -> int:
        return self.members[local]

    def local_rank(self, world: int) -> int:
        return self.members.index(world)

    def send(
        self,
        src_local: int,
        dst_local: int,
        arr: np.ndarray,
        tag: int = 0,
        label: str = "p2p",
    ) -> None:
        self.world.send(
            self.members[src_local], self.members[dst_local], arr, tag, label=label
        )

    def recv(self, dst_local: int, src_local: int | None = None, tag: int | None = None):
        src = None if src_local is None else self.members[src_local]
        return self.world.recv(self.members[dst_local], src, tag)
