"""Snapshot I/O: ParticleSet persistence and run checkpointing.

Snapshots are single ``.npz`` files holding every registered particle field
plus a small JSON header (time, step, format version).  The format is
self-describing: loading tolerates snapshots written by older field
registries (missing fields get defaults; unknown fields in the file are
ignored with a warning), so long-running campaigns survive library
upgrades.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.fdps.particles import FIELDS, ParticleSet
from repro.util.logging import get_logger

_LOG = get_logger("io")
FORMAT_VERSION = 1


def save_snapshot(
    ps: ParticleSet,
    path: str | Path,
    time: float = 0.0,
    step: int = 0,
    extra_meta: dict | None = None,
    compressed: bool = True,
) -> None:
    """Write a particle snapshot (fields + header) to ``path``."""
    header = {
        "format_version": FORMAT_VERSION,
        "time": float(time),
        "step": int(step),
        "n_particles": len(ps),
        "fields": sorted(ps.data.keys()),
    }
    if extra_meta:
        header["extra"] = extra_meta
    payload = {f"field/{k}": v for k, v in ps.data.items()}
    payload["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    writer = np.savez_compressed if compressed else np.savez
    writer(path, **payload)


def load_snapshot(path: str | Path) -> tuple[ParticleSet, dict]:
    """Read a snapshot; returns (particles, header).

    Fields absent from the file are default-filled; fields in the file that
    the current registry does not know are skipped (logged at WARNING).
    """
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        n = int(header["n_particles"])
        ps = ParticleSet.empty(n)
        for key in data.files:
            if not key.startswith("field/"):
                continue
            name = key[len("field/"):]
            if name not in FIELDS:
                _LOG.warning("snapshot %s: skipping unknown field %r", path, name)
                continue
            arr = data[key]
            if len(arr) != n:
                raise ValueError(
                    f"snapshot {path}: field {name!r} has {len(arr)} rows, "
                    f"header says {n}"
                )
            ps.data[name][...] = arr
    return ps, header


def save_simulation(sim, path: str | Path) -> None:
    """Checkpoint a :class:`~repro.core.simulation.GalaxySimulation`.

    Captures the particle state plus the integrator clock and counters;
    the pool's in-flight jobs are intentionally *not* captured (the paper's
    checkpointing strategy is the same: restart from the last global step —
    in-flight predictions are simply re-dispatched on the next SN window).
    """
    save_snapshot(
        sim.ps,
        path,
        time=sim.time,
        step=sim.step_count,
        extra_meta={
            "n_sn_events": sim.integrator.n_sn_events,
            "n_sf_events": sim.integrator.n_sf_events,
            "next_pid": sim.integrator.next_pid,
            "dt": sim.integrator.cfg.dt,
        },
    )


def load_simulation_state(path: str | Path) -> tuple[ParticleSet, dict]:
    """Read back a checkpoint written by :func:`save_simulation`."""
    ps, header = load_snapshot(path)
    return ps, header
