"""Snapshot I/O: ParticleSet persistence and run checkpointing.

Snapshots are single ``.npz`` files holding every registered particle field
plus a small JSON header (time, step, format version).  The format is
self-describing: loading tolerates snapshots written by older field
registries (missing fields get defaults; unknown fields in the file are
ignored with a warning), so long-running campaigns survive library
upgrades.

Writes are **atomic**: the payload goes to a hidden temp file in the
target directory, is fsynced, and is ``os.replace``-d into place.  A
writer killed mid-save (the checkpointing counterpart of the serve
fault-tolerance story) leaves the previous checkpoint intact — there is
never a moment when ``path`` names a torn file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.fdps.particles import FIELDS, ParticleSet
from repro.util.logging import get_logger

_LOG = get_logger("io")
FORMAT_VERSION = 1


def save_snapshot(
    ps: ParticleSet,
    path: str | Path,
    time: float = 0.0,
    step: int = 0,
    extra_meta: dict | None = None,
    compressed: bool = True,
    extra_arrays: dict[str, np.ndarray] | None = None,
) -> Path:
    """Write a particle snapshot (fields + header) to ``path`` atomically.

    ``extra_arrays`` ride along under ``extra/<name>`` keys — the restore
    path uses them for the integrator's force arrays; plain
    :func:`load_snapshot` ignores them, so a checkpoint is also a valid
    snapshot for any older reader.

    Returns the final path (numpy's convention: ``.npz`` is appended when
    missing).  The bytes are staged in a temp file in the same directory
    and renamed over ``path`` only once fully written and fsynced, so a
    crash mid-save can never corrupt an existing checkpoint.
    """
    header = {
        "format_version": FORMAT_VERSION,
        "time": float(time),
        "step": int(step),
        "n_particles": len(ps),
        "fields": sorted(ps.data.keys()),
    }
    if extra_meta:
        header["extra"] = extra_meta
    payload = {f"field/{k}": v for k, v in ps.data.items()}
    if extra_arrays:
        payload.update(
            {f"extra/{k}": np.asarray(v) for k, v in extra_arrays.items()}
        )
    payload["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    writer = np.savez_compressed if compressed else np.savez
    final = Path(path)
    if not final.name.endswith(".npz"):      # numpy appends .npz to str paths
        final = final.with_name(final.name + ".npz")
    tmp = final.with_name(f".{final.name}.tmp-{os.getpid()}")
    try:
        # Write to an open file object: numpy never renames or suffixes
        # those, so the staged bytes land exactly at ``tmp``.
        with open(tmp, "wb") as fh:
            writer(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return final


def _read_snapshot(data, path) -> tuple[ParticleSet, dict]:
    """Parse (particles, header) from an open ``.npz`` file."""
    header = json.loads(bytes(data["header"]).decode("utf-8"))
    n = int(header["n_particles"])
    ps = ParticleSet.empty(n)
    for key in data.files:
        if not key.startswith("field/"):
            continue
        name = key[len("field/"):]
        if name not in FIELDS:
            _LOG.warning("snapshot %s: skipping unknown field %r", path, name)
            continue
        arr = data[key]
        if len(arr) != n:
            raise ValueError(
                f"snapshot {path}: field {name!r} has {len(arr)} rows, "
                f"header says {n}"
            )
        ps.data[name][...] = arr
    return ps, header


def load_snapshot(path: str | Path) -> tuple[ParticleSet, dict]:
    """Read a snapshot; returns (particles, header).

    Fields absent from the file are default-filled; fields in the file that
    the current registry does not know are skipped (logged at WARNING).
    """
    with np.load(path) as data:
        return _read_snapshot(data, path)


def save_simulation(sim, path: str | Path) -> Path:
    """Checkpoint a :class:`~repro.core.simulation.GalaxySimulation`.

    Captures the particle state, the integrator clock and counters, the
    star-formation RNG state, the pool sizing, and the current force
    arrays, so :meth:`GalaxySimulation.restore` resumes bit-identically;
    the pool's in-flight *predictions* are intentionally not captured (the
    paper's checkpointing strategy is the same: restart from the last
    global step).  So that those SNe are not lost, the saved ``tsn`` of
    each in-flight event's star is reset to its explosion time — dispatch
    marked it fired with ``inf`` — and the restored integrator re-dispatches
    overdue SNe on its first step.
    """
    from dataclasses import asdict

    from repro.serve import SurrogateSpec

    integ = sim.integrator
    pool = sim.pool
    # Persist what is needed to rebuild the same service: the surrogate
    # itself only when a spec is derivable (the Sedov oracle, or a trained
    # export whose InferenceEngine records its model_path); a surrogate
    # backed by an anonymous in-memory predictor must be re-supplied via
    # restore(surrogate=) — restore() warns in that case.
    try:
        surrogate_spec = asdict(SurrogateSpec.from_surrogate(pool.server.local_surrogate))
    except ValueError:
        surrogate_spec = None
    serve_meta = {
        "transport": pool.server.transport_name,
        "n_workers": max(1, pool.server.n_workers),
        "max_batch": pool.server.scheduler.max_batch,
        "max_wait_steps": pool.server.scheduler.max_wait_steps,
        "shm_slots": pool.server.shm_slots,
        "shm_slot_particles": pool.server.shm_slot_particles,
    }
    ps_save = sim.ps
    pending = [e for e in sim.pool.events if not e.returned]
    n_rescheduled = 0
    if pending:
        ps_save = sim.ps.copy()
        for event in pending:
            idx = np.flatnonzero(ps_save.pid == event.star_pid)
            if idx.size:
                ps_save.tsn[idx] = event.time
                n_rescheduled += 1
    extra_arrays = None
    if integ._first_forces_done:
        extra_arrays = {
            "grav_acc": integ._grav_acc,
            "hydro_acc": integ._hydro_acc,
            "du_dt": integ._du_dt,
            "vsig": integ._vsig,
        }
    return save_snapshot(
        ps_save,
        path,
        time=sim.time,
        step=sim.step_count,
        extra_meta={
            # Re-scheduled in-flight SNe will be counted again on restore.
            "n_sn_events": integ.n_sn_events - n_rescheduled,
            "n_sf_events": integ.n_sf_events,
            "next_pid": integ.next_pid,
            "dt": integ.cfg.dt,
            "n_pool": sim.pool.n_pool,
            "latency_steps": sim.pool.latency_steps,
            "seed": integ.cfg.seed,
            "rng_state": integ.rng.bit_generator.state,
            "integrator_config": asdict(integ.cfg),
            "overflow_policy": str(pool.overflow_policy.value),
            "serve": serve_meta,
            "surrogate_spec": surrogate_spec,
        },
        extra_arrays=extra_arrays,
    )


def load_simulation_state(path: str | Path) -> tuple[ParticleSet, dict]:
    """Read back a checkpoint written by :func:`save_simulation`."""
    ps, header = load_snapshot(path)
    return ps, header


@dataclass
class CheckpointState:
    """Everything :meth:`GalaxySimulation.restore` needs from one file."""

    ps: ParticleSet
    header: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


def load_checkpoint(path: str | Path) -> CheckpointState:
    """Read a checkpoint including the ``extra/`` integrator arrays."""
    arrays: dict[str, np.ndarray] = {}
    with np.load(path) as data:
        ps, header = _read_snapshot(data, path)
        for key in data.files:
            if key.startswith("extra/"):
                arrays[key[len("extra/"):]] = data[key]
    return CheckpointState(ps=ps, header=header, arrays=arrays)
