"""Analytic density profiles and rotation curves.

All lengths in pc, masses in M_sun, velocities in pc/Myr.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import GRAV_CONST


@dataclass
class NFWHalo:
    """The broken power-law halo of Sec. 4.2: rho ~ r^-1 inner, r^-3 outer.

    rho(r) = rho_s / [(r/a)(1 + r/a)^2], truncated at r_max.
    """

    m_total: float          # mass within r_max [M_sun]
    a: float                # scale radius [pc]
    r_max: float            # truncation radius [pc]

    @property
    def rho_s(self) -> float:
        c = self.r_max / self.a
        norm = np.log(1.0 + c) - c / (1.0 + c)
        return self.m_total / (4.0 * np.pi * self.a**3 * norm)

    def density(self, r: np.ndarray) -> np.ndarray:
        x = np.maximum(np.asarray(r, dtype=np.float64), 1e-12) / self.a
        return self.rho_s / (x * (1.0 + x) ** 2)

    def enclosed_mass(self, r: np.ndarray) -> np.ndarray:
        x = np.maximum(np.asarray(r, dtype=np.float64), 0.0) / self.a
        return 4.0 * np.pi * self.rho_s * self.a**3 * (np.log(1.0 + x) - x / (1.0 + x))

    def circular_velocity(self, r: np.ndarray) -> np.ndarray:
        r = np.maximum(np.asarray(r, dtype=np.float64), 1e-12)
        return np.sqrt(GRAV_CONST * self.enclosed_mass(r) / r)

    def sample_radii(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Inverse-CDF sampling of the enclosed-mass profile up to r_max."""
        grid = np.geomspace(self.a * 1e-4, self.r_max, 512)
        cdf = self.enclosed_mass(grid)
        cdf /= cdf[-1]
        u = rng.uniform(0.0, 1.0, n)
        return np.interp(u, cdf, grid)


@dataclass
class ExponentialDisk:
    """Radially exponential, vertically sech^2 disk.

    Sigma(R) = M / (2 pi Rd^2) exp(-R/Rd);  rho(R, z) = Sigma sech^2(z/zd)/(2 zd).
    """

    m_total: float
    r_d: float     # scale length [pc]
    z_d: float     # scale height [pc]
    r_max: float | None = None  # truncation (default 10 Rd)

    def __post_init__(self) -> None:
        if self.r_max is None:
            self.r_max = 10.0 * self.r_d

    def surface_density(self, r_cyl: np.ndarray) -> np.ndarray:
        return (
            self.m_total
            / (2.0 * np.pi * self.r_d**2)
            * np.exp(-np.asarray(r_cyl, dtype=np.float64) / self.r_d)
        )

    def density(self, r_cyl: np.ndarray, z: np.ndarray) -> np.ndarray:
        sig = self.surface_density(r_cyl)
        return sig / (2.0 * self.z_d) / np.cosh(np.asarray(z) / self.z_d) ** 2

    def enclosed_mass_cyl(self, r_cyl: np.ndarray) -> np.ndarray:
        """Mass inside cylinder radius R (all z)."""
        x = np.asarray(r_cyl, dtype=np.float64) / self.r_d
        return self.m_total * (1.0 - (1.0 + x) * np.exp(-x))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """(n, 3) positions from the truncated disk."""
        # Radial inverse CDF of the exponential-disk enclosed mass.
        grid = np.linspace(0.0, float(self.r_max), 2048)
        cdf = self.enclosed_mass_cyl(grid)
        cdf /= cdf[-1]
        u = rng.uniform(0.0, 1.0, n)
        r = np.interp(u, cdf, grid)
        phi = rng.uniform(0.0, 2.0 * np.pi, n)
        # Vertical sech^2: z = zd * atanh(2u - 1).
        z = self.z_d * np.arctanh(rng.uniform(-1.0, 1.0, n) * (1 - 1e-12))
        return np.column_stack([r * np.cos(phi), r * np.sin(phi), z])


@dataclass
class CompositeRotation:
    """Spherically-approximated rotation curve of halo + disks.

    AGAMA solves the full axisymmetric potential; we approximate the disks'
    contribution by their cylinder-enclosed mass treated spherically, which
    is accurate to ~10-15% — sufficient for the decomposition/scaling
    experiments this library targets (documented substitution, DESIGN.md).
    """

    halo: NFWHalo
    disks: tuple[ExponentialDisk, ...]

    def enclosed_mass(self, r: np.ndarray) -> np.ndarray:
        m = self.halo.enclosed_mass(r)
        for d in self.disks:
            m = m + d.enclosed_mass_cyl(r)
        return m

    def circular_velocity(self, r: np.ndarray) -> np.ndarray:
        r = np.maximum(np.asarray(r, dtype=np.float64), 1e-12)
        return np.sqrt(GRAV_CONST * self.enclosed_mass(r) / r)
