"""Initial conditions: an AGAMA-lite galaxy model builder (Sec. 4.2).

The paper builds Model MW with AGAMA (modified for per-domain parallel
generation): a broken power-law DM halo (inner slope -1), an exponential
stellar disk, an equilibrium gas disk from the potential method, with total
masses 1.1e12 / 5.4e10 / 1.2e10 M_sun.  This package reproduces the same
three-component structure with inverse-CDF and Jeans-based sampling:

* :mod:`repro.ic.profiles` — density/enclosed-mass/circular-velocity curves;
* :mod:`repro.ic.halo` — NFW-like halo sampling with isotropic Jeans
  velocities;
* :mod:`repro.ic.disk` — exponential/sech^2 stellar disk with asymmetric
  drift;
* :mod:`repro.ic.gasdisk` — hydrostatic gas disk (potential-method stand-in)
  with pressure-corrected rotation;
* :mod:`repro.ic.galaxy` — Model MW / MW-small / MW-mini factories and the
  per-domain parallel generation used at scale.
"""

from repro.ic.profiles import NFWHalo, ExponentialDisk
from repro.ic.galaxy import (
    MWModelSpec,
    MW_SPEC,
    make_mw_model,
    make_mw_small,
    make_mw_mini,
    generate_for_domain,
)

__all__ = [
    "NFWHalo",
    "ExponentialDisk",
    "MWModelSpec",
    "MW_SPEC",
    "make_mw_model",
    "make_mw_small",
    "make_mw_mini",
    "generate_for_domain",
]
