"""Equilibrium gas disk — the potential-method stand-in (Wang et al. 2010).

The paper generates its gas disk with the potential method: iterate the
vertical structure to hydrostatic equilibrium in the combined potential.
Our stand-in solves the same two balances analytically:

* **vertical**: an isothermal sech^2 slab whose scale height satisfies the
  self-gravitating relation h_z = c_s^2 / (pi G Sigma), floored at a
  minimum (external potential compresses the inner disk);
* **radial**: rotation with the pressure-gradient correction
  v_phi^2 = v_c^2 + c_s^2 d ln rho / d ln R (the Sigma ~ exp(-R/Rd) term
  gives d ln rho / d ln R = -R/Rd).
"""

from __future__ import annotations

import numpy as np

from repro.ic.profiles import CompositeRotation, ExponentialDisk
from repro.util.constants import GRAV_CONST, temperature_to_internal_energy


def gas_scale_height(
    disk: ExponentialDisk, c_s: float, r_cyl: np.ndarray, floor: float = 20.0
) -> np.ndarray:
    """Self-gravitating isothermal slab height h = c_s^2 / (pi G Sigma)."""
    sigma = disk.surface_density(r_cyl)
    h = c_s**2 / (np.pi * GRAV_CONST * np.maximum(sigma, 1e-300))
    return np.clip(h, floor, 20.0 * disk.z_d)


def sample_gas_disk(
    disk: ExponentialDisk,
    rotation: CompositeRotation,
    n: int,
    rng: np.random.Generator,
    temperature: float = 1.0e4,
) -> tuple[np.ndarray, np.ndarray, float]:
    """(positions, velocities, u) of ``n`` gas particles.

    Returns the specific internal energy of the (isothermal) disk as well.
    """
    u = float(temperature_to_internal_energy(temperature))
    c_s = np.sqrt(2.0 / 3.0 * u)  # isothermal sound speed, gamma = 5/3

    # Radial sampling as for the stellar disk.
    grid = np.linspace(0.0, float(disk.r_max), 2048)
    cdf = disk.enclosed_mass_cyl(grid)
    cdf /= cdf[-1]
    r_cyl = np.interp(rng.uniform(0.0, 1.0, n), cdf, grid)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)

    # Vertical: sech^2 at the *equilibrium* height, not the nominal z_d.
    h_z = gas_scale_height(disk, c_s, r_cyl)
    z = h_z * np.arctanh(rng.uniform(-1.0, 1.0, n) * (1 - 1e-12))

    v_c = rotation.circular_velocity(np.maximum(r_cyl, 1.0))
    # Pressure-corrected rotation; clamp at zero for the innermost gas.
    v_phi2 = v_c**2 - c_s**2 * (r_cyl / disk.r_d)
    v_phi = np.sqrt(np.maximum(v_phi2, 0.0))

    cosp, sinp = np.cos(phi), np.sin(phi)
    pos = np.column_stack([r_cyl * cosp, r_cyl * sinp, z])
    vel = np.column_stack([-v_phi * sinp, v_phi * cosp, np.zeros(n)])
    return pos, vel, u
