"""Stellar disk sampling: rotation plus radially declining dispersions."""

from __future__ import annotations

import numpy as np

from repro.ic.profiles import CompositeRotation, ExponentialDisk


def sample_stellar_disk(
    disk: ExponentialDisk,
    rotation: CompositeRotation,
    n: int,
    rng: np.random.Generator,
    sigma_frac: float = 0.15,
) -> tuple[np.ndarray, np.ndarray]:
    """(positions, velocities) of ``n`` disk stars.

    Tangential motion is the circular velocity minus a simple asymmetric
    drift (v_phi^2 = v_c^2 - sigma_R^2); dispersions decline as
    exp(-R / 2 Rd) from ``sigma_frac`` of the peak circular speed, the
    standard warm-disk setup.
    """
    pos = disk.sample(n, rng)
    r_cyl = np.sqrt(pos[:, 0] ** 2 + pos[:, 1] ** 2)
    v_c = rotation.circular_velocity(np.maximum(r_cyl, 1.0))

    sigma0 = sigma_frac * float(rotation.circular_velocity(np.array([2.0 * disk.r_d]))[0])
    sigma_r = sigma0 * np.exp(-r_cyl / (2.0 * disk.r_d))
    sigma_phi = 0.7 * sigma_r
    sigma_z = 0.5 * sigma_r

    v_phi_mean = np.sqrt(np.maximum(v_c**2 - 2.0 * sigma_r**2, 0.0))
    v_r = rng.normal(0.0, 1.0, n) * sigma_r
    v_phi = v_phi_mean + rng.normal(0.0, 1.0, n) * sigma_phi
    v_z = rng.normal(0.0, 1.0, n) * sigma_z

    cosp = pos[:, 0] / np.maximum(r_cyl, 1e-12)
    sinp = pos[:, 1] / np.maximum(r_cyl, 1e-12)
    vel = np.column_stack(
        [v_r * cosp - v_phi * sinp, v_r * sinp + v_phi * cosp, v_z]
    )
    return pos, vel
