"""Model MW factories and per-domain parallel generation (Sec. 4.2).

The paper's Model MW: M_DM = 1.1e12, M_star = 5.4e10, M_gas = 1.2e10 M_sun;
"the halo is mainly composed of DM, but some stars and gas are also
distributed"; disk scale height ~10% of the scale length; density strongly
concentrated toward the centre and mid-plane (which shapes the Fig. 4
decomposition).  ``make_mw_small`` and ``make_mw_mini`` scale all component
masses by 1/10 and 1/100 (the paper's Model MW-small / MW-mini).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.domain import DomainDecomposition
from repro.fdps.particles import ParticleSet, ParticleType
from repro.ic.disk import sample_stellar_disk
from repro.ic.gasdisk import sample_gas_disk
from repro.ic.halo import sample_halo
from repro.ic.profiles import CompositeRotation, ExponentialDisk, NFWHalo


@dataclass
class MWModelSpec:
    """Structural parameters of the Milky Way model (McMillan 2017-flavored)."""

    m_dm: float = 1.1e12
    m_star: float = 5.4e10
    m_gas: float = 1.2e10
    halo_a: float = 2.0e4          # NFW scale radius [pc]
    halo_rmax: float = 2.0e5       # halo extent: 200 kpc (Sec. 1)
    star_rd: float = 2.6e3         # stellar disk scale length [pc]
    star_zd: float = 3.0e2         # ~10% of the scale length (Sec. 4.2)
    gas_rd: float = 4.5e3
    gas_zd: float = 1.0e2
    gas_temperature: float = 1.0e4
    halo_star_fraction: float = 0.05   # stars living in the halo component

    def scaled(self, factor: float) -> "MWModelSpec":
        """Mass-scaled variant with sizes ~ M^{1/3} (fixed mean density)."""
        s = factor ** (1.0 / 3.0)
        return MWModelSpec(
            m_dm=self.m_dm * factor,
            m_star=self.m_star * factor,
            m_gas=self.m_gas * factor,
            halo_a=self.halo_a * s,
            halo_rmax=self.halo_rmax * s,
            star_rd=self.star_rd * s,
            star_zd=self.star_zd * s,
            gas_rd=self.gas_rd * s,
            gas_zd=self.gas_zd * s,
            gas_temperature=self.gas_temperature,
            halo_star_fraction=self.halo_star_fraction,
        )

    @property
    def m_total(self) -> float:
        return self.m_dm + self.m_star + self.m_gas

    def components(self) -> tuple[NFWHalo, ExponentialDisk, ExponentialDisk, CompositeRotation]:
        halo = NFWHalo(m_total=self.m_dm, a=self.halo_a, r_max=self.halo_rmax)
        star_disk = ExponentialDisk(
            m_total=self.m_star * (1 - self.halo_star_fraction),
            r_d=self.star_rd,
            z_d=self.star_zd,
        )
        gas_disk = ExponentialDisk(m_total=self.m_gas, r_d=self.gas_rd, z_d=self.gas_zd)
        rot = CompositeRotation(halo=halo, disks=(star_disk, gas_disk))
        return halo, star_disk, gas_disk, rot


#: The paper's Model MW.
MW_SPEC = MWModelSpec()


def make_mw_model(
    n_total: int,
    seed: int = 0,
    spec: MWModelSpec | None = None,
    softening: float | None = None,
    count_fractions: tuple[float, float, float] | None = None,
) -> ParticleSet:
    """Sample a three-component MW model with ``n_total`` particles.

    By default particle counts are proportional to component masses, so
    every species shares one particle mass.  ``count_fractions``
    (dm, star, gas) overrides the split — e.g. ``(0.3, 0.3, 0.4)`` gives a
    gas-rich sampling with per-species particle masses, the usual
    different-resolution-per-species setup (the paper itself uses ~8x
    heavier DM particles, Table 2).
    """
    spec = spec or MW_SPEC
    rng = np.random.default_rng(seed)
    halo, star_disk, gas_disk, rot = spec.components()

    if count_fractions is None:
        f_dm = spec.m_dm / spec.m_total
        f_gas = spec.m_gas / spec.m_total
    else:
        f_dm, _f_star, f_gas = count_fractions
    n_dm = max(int(round(n_total * f_dm)), 1)
    n_gas = max(int(round(n_total * f_gas)), 1)
    n_star = max(n_total - n_dm - n_gas, 1)
    n_star_halo = int(round(n_star * spec.halo_star_fraction))
    n_star_disk = n_star - n_star_halo

    pieces: list[ParticleSet] = []
    pid0 = 0

    # --- dark matter halo -----------------------------------------------------
    pos, vel = sample_halo(halo, rot, n_dm, rng)
    dm = ParticleSet.from_arrays(
        pos=pos,
        vel=vel,
        mass=np.full(n_dm, spec.m_dm / n_dm),
        pid=np.arange(pid0, pid0 + n_dm),
        ptype=np.full(n_dm, int(ParticleType.DARK_MATTER)),
    )
    dm.eps[:] = _softening(spec.m_dm / n_dm, softening)
    pieces.append(dm)
    pid0 += n_dm

    # --- stellar disk (+ halo stars sampled from a puffed spheroid) -----------
    pos, vel = sample_stellar_disk(star_disk, rot, n_star_disk, rng)
    stars = ParticleSet.from_arrays(
        pos=pos,
        vel=vel,
        mass=np.full(n_star_disk, spec.m_star * (1 - spec.halo_star_fraction) / max(n_star_disk, 1)),
        pid=np.arange(pid0, pid0 + n_star_disk),
        ptype=np.full(n_star_disk, int(ParticleType.STAR)),
    )
    stars.eps[:] = _softening(spec.m_star / max(n_star, 1), softening)
    pieces.append(stars)
    pid0 += n_star_disk

    if n_star_halo > 0:
        mini_halo = NFWHalo(
            m_total=spec.m_star * spec.halo_star_fraction,
            a=spec.halo_a / 4.0,
            r_max=spec.halo_rmax / 2.0,
        )
        pos, vel = sample_halo(mini_halo, rot, n_star_halo, rng)
        shalo = ParticleSet.from_arrays(
            pos=pos,
            vel=vel,
            mass=np.full(n_star_halo, spec.m_star * spec.halo_star_fraction / n_star_halo),
            pid=np.arange(pid0, pid0 + n_star_halo),
            ptype=np.full(n_star_halo, int(ParticleType.STAR)),
        )
        shalo.eps[:] = _softening(spec.m_star / max(n_star, 1), softening)
        pieces.append(shalo)
        pid0 += n_star_halo

    # --- gas disk ---------------------------------------------------------------
    pos, vel, u = sample_gas_disk(gas_disk, rot, n_gas, rng, spec.gas_temperature)
    gas = ParticleSet.from_arrays(
        pos=pos,
        vel=vel,
        mass=np.full(n_gas, spec.m_gas / n_gas),
        pid=np.arange(pid0, pid0 + n_gas),
        ptype=np.full(n_gas, int(ParticleType.GAS)),
    )
    gas.eps[:] = _softening(spec.m_gas / n_gas, softening)
    gas.u[:] = u
    gas.h[:] = 2.0 * spec.gas_rd / max(n_gas, 1) ** (1.0 / 3.0) * 10.0
    pieces.append(gas)

    out = pieces[0]
    for p in pieces[1:]:
        out = out.append(p)
    return out


def _softening(m_particle: float, override: float | None) -> float:
    """Resolution-scaled softening ~ m^{1/3} anchored at 10 pc for 1e5 M_sun."""
    if override is not None:
        return override
    return 10.0 * (max(m_particle, 1e-3) / 1.0e5) ** (1.0 / 3.0)


def make_mw_small(n_total: int, seed: int = 0) -> ParticleSet:
    """Model MW-small: 1/10 of the MW mass (Sec. 4.2)."""
    return make_mw_model(n_total, seed=seed, spec=MW_SPEC.scaled(0.1))


def make_mw_mini(n_total: int, seed: int = 0) -> ParticleSet:
    """Model MW-mini: 1/100 of the MW mass (Sec. 4.2)."""
    return make_mw_model(n_total, seed=seed, spec=MW_SPEC.scaled(0.01))


def generate_for_domain(
    decomp: DomainDecomposition,
    rank: int,
    n_total: int,
    seed: int = 0,
    spec: MWModelSpec | None = None,
) -> ParticleSet:
    """Per-domain parallel generation (the paper's AGAMA modification).

    Each rank generates the full deterministic stream for its seed but keeps
    only its own domain's particles, so the union over ranks reproduces the
    single-process model exactly while each rank touches only O(N) work once
    — the simple, bitwise-reproducible flavour of per-domain generation (the
    production code samples the DF restricted to the domain instead).
    """
    full = make_mw_model(n_total, seed=seed, spec=spec)
    ranks = decomp.assign(full.pos)
    return full.select(ranks == rank)
