"""Dark-matter halo sampling with isotropic Jeans velocities.

Positions come from the NFW inverse CDF; velocity dispersions solve the
isotropic spherical Jeans equation

.. math::  \\sigma^2(r) = \\frac{1}{\\rho(r)} \\int_r^{\\infty}
           \\rho(s) \\frac{v_c^2(s)}{s} \\, ds

on a log grid (AGAMA draws from a distribution function; a Maxwellian at
the local Jeans dispersion is the standard N-body-IC shortcut and keeps the
halo in approximate equilibrium over the few-Myr windows our runs cover).
"""

from __future__ import annotations

import numpy as np

from repro.ic.profiles import CompositeRotation, NFWHalo


def jeans_sigma(
    halo: NFWHalo,
    rotation: CompositeRotation,
    r: np.ndarray,
    n_grid: int = 256,
) -> np.ndarray:
    """Isotropic 1D velocity dispersion at radii ``r``."""
    grid = np.geomspace(halo.a * 1e-3, halo.r_max * 3.0, n_grid)
    rho = halo.density(grid)
    integrand = rho * rotation.circular_velocity(grid) ** 2 / grid
    # Cumulative integral from r to infinity (reverse cumtrapz).
    seg = 0.5 * (integrand[1:] + integrand[:-1]) * np.diff(grid)
    tail = np.concatenate([np.cumsum(seg[::-1])[::-1], [0.0]])
    sigma2 = tail / np.maximum(rho, 1e-300)
    return np.interp(np.asarray(r, dtype=np.float64), grid, np.sqrt(np.maximum(sigma2, 0.0)))


def sample_halo(
    halo: NFWHalo,
    rotation: CompositeRotation,
    n: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """(positions, velocities) of ``n`` halo particles."""
    r = halo.sample_radii(n, rng)
    mu = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    s = np.sqrt(1.0 - mu**2)
    pos = np.column_stack([r * s * np.cos(phi), r * s * np.sin(phi), r * mu])

    sigma = jeans_sigma(halo, rotation, r)
    vel = rng.normal(0.0, 1.0, (n, 3)) * sigma[:, None]
    # Clip at the local escape-ish speed so no particle leaves instantly.
    v_esc = np.sqrt(2.0) * rotation.circular_velocity(r) * 1.8
    vmag = np.linalg.norm(vel, axis=1)
    over = vmag > v_esc
    if over.any():
        vel[over] *= (v_esc[over] / vmag[over])[:, None]
    return pos, vel
