"""Machine specifications (Sec. 4.1).

Numbers are taken directly from the paper's system descriptions:

* **Fugaku** — 158,976 nodes of one Fujitsu A64FX (48 cores, 2.0 GHz),
  32 GB/node, 6.144 TF single / 3.072 TF double per node, TofuD 6D
  mesh/torus (used as a folded 3D torus by the rank mapping);
* **Rusty (genoa)** — 432 nodes of 2x AMD EPYC 9474F (48 cores, 4.1 GHz),
  1.5 TB/node, 6.298 TF single per socket, InfiniBand;
* **Miyabi (Miyabi-G)** — 1,120 nodes of NVIDIA GH200 (72-core Grace,
  3.0 GHz + H100, 66.9 TF), NVLink-C2C.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Alpha-beta network model plus topology class."""

    topology: str               # "torus3d" or "fat-tree"
    latency_us: float           # per-message software+wire latency
    bandwidth_gb_s: float       # per-node injection bandwidth
    links_per_node: int = 1

    def message_time(self, nbytes: float, n_messages: int = 1) -> float:
        """Seconds for n sequential messages totalling nbytes from one node."""
        return n_messages * self.latency_us * 1e-6 + nbytes / (
            self.bandwidth_gb_s * 1e9
        )


@dataclass(frozen=True)
class ProcessorSpec:
    """One socket/accelerator."""

    name: str
    isa: str                    # "a64fx-sve" | "genoa-avx2" | "genoa-avx512" | "gh200"
    cores: int
    clock_ghz: float
    peak_sp_tflops: float       # single-precision peak per socket
    fma_latency_cycles: int     # pipeline latency of the FP units
    simd_registers: int         # architectural vector registers
    has_fast_table_lookup: bool # SVE/AVX-512 permute-based lookup
    memory_bw_gb_s: float
    #: Relative pointer-chasing speed (tree traversal is latency-, not
    #: bandwidth-bound; A64FX = 1.0 is the reference — its weak
    #: out-of-order core is why Tree construction costs ~1 s/step there).
    random_access_factor: float = 1.0

    @property
    def peak_sp_per_core_gflops(self) -> float:
        return self.peak_sp_tflops * 1e3 / self.cores


@dataclass(frozen=True)
class Machine:
    """A full system: nodes of (possibly several) sockets plus network."""

    name: str
    processor: ProcessorSpec
    sockets_per_node: int
    n_nodes_max: int
    mem_per_node_gb: float
    network: NetworkSpec
    mpi_per_node: int
    threads_per_mpi: int

    @property
    def peak_sp_node_tflops(self) -> float:
        return self.processor.peak_sp_tflops * self.sockets_per_node

    def peak_system_pflops(self, n_nodes: int) -> float:
        return self.peak_sp_node_tflops * n_nodes / 1e3


A64FX = ProcessorSpec(
    name="Fujitsu A64FX",
    isa="a64fx-sve",
    cores=48,
    clock_ghz=2.0,
    peak_sp_tflops=6.144,
    fma_latency_cycles=9,      # the paper: "9 cycles for FMA"
    simd_registers=32,
    has_fast_table_lookup=True,
    memory_bw_gb_s=1024.0,     # HBM2
    random_access_factor=1.0,
)

GENOA = ProcessorSpec(
    name="AMD EPYC 9474F",
    isa="genoa-avx512",
    cores=48,
    clock_ghz=4.1,
    peak_sp_tflops=6.298,
    fma_latency_cycles=4,
    simd_registers=32,
    has_fast_table_lookup=True,   # AVX-512 permute
    memory_bw_gb_s=460.0,
    random_access_factor=5.0,     # deep OoO core + big caches
)

GH200 = ProcessorSpec(
    name="NVIDIA GH200 (H100)",
    isa="gh200",
    cores=132,                  # SMs
    clock_ghz=1.8,
    peak_sp_tflops=66.9,
    fma_latency_cycles=4,
    simd_registers=65536,       # register file per SM, effectively unbound
    has_fast_table_lookup=False,  # shared-memory lookup; PIKG untuned (Sec. 5.4)
    memory_bw_gb_s=3350.0,
    random_access_factor=3.0,   # the Grace CPU side does the tree work
)

FUGAKU = Machine(
    name="Fugaku",
    processor=A64FX,
    sockets_per_node=1,
    n_nodes_max=158_976,
    mem_per_node_gb=32.0,
    network=NetworkSpec(topology="torus3d", latency_us=1.2, bandwidth_gb_s=6.8),
    mpi_per_node=1,
    threads_per_mpi=48,
)

RUSTY = Machine(
    name="Rusty (genoa)",
    processor=GENOA,
    sockets_per_node=2,
    n_nodes_max=432,
    mem_per_node_gb=1536.0,
    network=NetworkSpec(topology="fat-tree", latency_us=1.0, bandwidth_gb_s=25.0),
    mpi_per_node=48,
    threads_per_mpi=2,
)

MIYABI = Machine(
    name="Miyabi",
    processor=GH200,
    sockets_per_node=1,
    n_nodes_max=1_120,
    mem_per_node_gb=216.0,   # 120 CPU + 96 GPU
    network=NetworkSpec(topology="fat-tree", latency_us=1.0, bandwidth_gb_s=25.0),
    mpi_per_node=1,
    threads_per_mpi=72,
)
