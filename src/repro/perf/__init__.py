"""Machine/network performance model for Fugaku, Rusty and Miyabi.

The paper's headline evaluation (weak/strong scaling to 148,900 nodes,
Figs. 6–7; the time/FLOP breakdown of Table 3; the per-ISA kernel speeds of
Table 4) ran on hardware this reproduction cannot access.  Per the
substitution policy in DESIGN.md we model it instead:

* :mod:`repro.perf.machines` — node specs (A64FX / genoa / GH200) and
  network parameters (TofuD torus, InfiniBand);
* :mod:`repro.perf.kernels` — a semi-empirical per-ISA efficiency model of
  the PIKG interaction kernels (pipeline-latency, register-count,
  table-lookup and gather penalties), reproducing Table 4;
* :mod:`repro.perf.costmodel` — per-step time for every breakdown part of
  Fig. 6/Table 3, built from the same algorithmic counts the real code has
  (tree O(N log N), LET surface terms, 3-phase alltoallv) and calibrated at
  the single Table 3 anchor (weakMW2M on 150k nodes);
* :mod:`repro.perf.scaling` — weak/strong scaling sweeps (Figs. 6–7) and
  the Sec. 5.3 time-to-solution arithmetic (the 113x and 10x claims).

The *shape* of the curves — which parts dominate where, the log N weak-
scaling slope, communication overtaking compute at high node counts — is
the reproduction target; absolute seconds inherit the calibration.
"""

from repro.perf.machines import FUGAKU, RUSTY, MIYABI, Machine, NetworkSpec
from repro.perf.kernels import kernel_performance_table, KernelPerf
from repro.perf.costmodel import StepCostModel, RunConfig, PAPER_TABLE3, serve_summary
from repro.perf.scaling import (
    weak_scaling_curve,
    strong_scaling_curve,
    time_to_solution_speedup,
    timestep_ratio_vs_conventional,
)

__all__ = [
    "FUGAKU",
    "RUSTY",
    "MIYABI",
    "Machine",
    "NetworkSpec",
    "kernel_performance_table",
    "KernelPerf",
    "StepCostModel",
    "RunConfig",
    "PAPER_TABLE3",
    "serve_summary",
    "weak_scaling_curve",
    "strong_scaling_curve",
    "time_to_solution_speedup",
    "timestep_ratio_vs_conventional",
]
