"""Scaling sweeps (Figs. 6–7) and time-to-solution (Sec. 5.3).

The weak-scaling series keeps particles-per-node fixed (2M on Fugaku,
25M per MPI process on Rusty) and sweeps node counts; the strong-scaling
series fixes the total and divides.  Each point is a full cost-model
breakdown, so the benchmark can print the same per-part curves the figures
plot, including the ~log N growth of the weak-scaling total that the paper
draws as its dashed guide line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.costmodel import RunConfig, StepCostModel
from repro.perf.machines import Machine
from repro.sph.timestep import timestep_mass_scaling


@dataclass
class ScalingPoint:
    """One node count in a scaling sweep."""

    n_nodes: int
    n_particles: float
    total_seconds: float
    breakdown: dict[str, float]
    achieved_pflops: float
    efficiency: float


def weak_scaling_curve(
    machine: Machine,
    node_counts: list[int],
    particles_per_node: float = 2.0e6,
    gas_fraction: float = 4.9e10 / 3.0e11,
    n_g: int = 2048,
) -> list[ScalingPoint]:
    """Fig. 6/7 (left): fixed per-node load, growing system."""
    model = StepCostModel()
    out = []
    for p in node_counts:
        cfg = RunConfig(
            machine=machine,
            n_nodes=p,
            n_particles=particles_per_node * p,
            gas_fraction=gas_fraction,
            n_g=n_g,
        )
        bd = model.breakdown(cfg)
        out.append(
            ScalingPoint(
                n_nodes=p,
                n_particles=cfg.n_particles,
                total_seconds=sum(bd.values()),
                breakdown=bd,
                achieved_pflops=model.achieved_pflops(cfg),
                efficiency=model.efficiency(cfg),
            )
        )
    return out


def strong_scaling_curve(
    machine: Machine,
    node_counts: list[int],
    n_particles: float,
    gas_fraction: float = 4.9e10 / 3.0e11,
    n_g: int = 2048,
) -> list[ScalingPoint]:
    """Fig. 6/7 (right): fixed total, divided over more nodes."""
    model = StepCostModel()
    out = []
    for p in node_counts:
        cfg = RunConfig(
            machine=machine,
            n_nodes=p,
            n_particles=n_particles,
            gas_fraction=gas_fraction,
            n_g=n_g,
        )
        bd = model.breakdown(cfg)
        out.append(
            ScalingPoint(
                n_nodes=p,
                n_particles=n_particles,
                total_seconds=sum(bd.values()),
                breakdown=bd,
                achieved_pflops=model.achieved_pflops(cfg),
                efficiency=model.efficiency(cfg),
            )
        )
    return out


def weak_scaling_efficiency(points: list[ScalingPoint]) -> float:
    """Efficiency of the largest run vs the smallest, log N compensated.

    The paper: "Considering the increase of the calculation cost with
    log N, the efficiency of 148k nodes is 54% of 128 nodes."
    """
    first, last = points[0], points[-1]
    lognfac = np.log2(last.n_particles) / np.log2(first.n_particles)
    return float(first.total_seconds * lognfac / last.total_seconds)


# ------------------------------------------------------------ Sec. 5.3 maths
def time_to_solution_speedup(
    n_particles: float = 3.0e11,
    seconds_per_step: float = 20.0,
    dt_years: float = 2000.0,
    gizmo_particles: float = 1.5e8,
    gizmo_hours_per_myr: float = 0.0125,
) -> dict:
    """The 113x arithmetic of Sec. 5.3, reproduced step by step.

    GIZMO's fastest MW-size run integrates 1.5e8 particles for 1 Myr in
    0.0125 h and stops scaling beyond ~2,000 CPUs; scaling its cost to our
    particle count requires the N^{4/3} law (N for volume x N^{1/3} for the
    adaptive-timestep shrinkage), against which our fixed-timestep cost is
    steps x seconds_per_step.
    """
    steps_per_myr = 1.0e6 / dt_years
    ours_hours = steps_per_myr * seconds_per_step / 3600.0
    ratio = n_particles / gizmo_particles
    gizmo_hours = ratio ** (4.0 / 3.0) * gizmo_hours_per_myr
    return {
        "ours_hours_per_myr": ours_hours,
        "gizmo_hours_per_myr": gizmo_hours,
        "speedup": gizmo_hours / ours_hours,
        "steps_per_myr": steps_per_myr,
    }


def timestep_ratio_vs_conventional(
    dt_ml_years: float = 2000.0, dt_conventional_years: float = 200.0
) -> float:
    """The 10x timestep claim: fixed ML step over the post-SN CFL step."""
    return dt_ml_years / dt_conventional_years


def conventional_timestep_after_refinement(
    m_ref: float, dt_ref_years: float, m_new: float
) -> float:
    """dt ~ m^{5/6}: what adaptive codes pay for star-by-star resolution."""
    return timestep_mass_scaling(m_ref, dt_ref_years, m_new)


def projected_one_gyr_walltime(
    seconds_per_step: float = 10.0, dt_years: float = 2000.0
) -> dict:
    """Sec. 5.1's closing estimate: ~60 days for a Gyr at 10 s/step."""
    steps = 1.0e9 / dt_years
    seconds = steps * seconds_per_step
    return {"steps": steps, "seconds": seconds, "days": seconds / 86400.0}
