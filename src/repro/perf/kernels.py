"""Per-ISA interaction-kernel performance model (Table 4).

Table 4 of the paper measures the asymptotic single-core (single-GPU) speed
of the three PIKG kernels on four ISAs.  We model the efficiency
mechanistically from the ISA parameters the paper itself blames:

* **pipeline utilization** — hiding an FMA latency of L cycles at issue
  width W needs ~L*W independent operations in flight; the unroll factor is
  capped by the architectural register count, and A64FX's 32 SVE registers
  cannot cover its 9-cycle latency, forcing loop fission whose loads/stores
  cost extra (Sec. 5.4);
* **table lookup** — the hydro kernels evaluate the PPA segment table;
  SVE/AVX-512 have register-resident permute lookups, AVX2 falls back to
  gather loads (the paper: "which may result in the relatively low
  performance of AVX2 hydro kernels"), and the untuned GPU path spills the
  table to memory (0.64–2.8% efficiency in the paper);
* **non-FMA fraction** — of the kernel's operation mix, ops that cannot
  fuse (rsqrt iterations, compares) issue at half throughput.

Each effect has one calibration constant; the model is validated against
all 12 paper numbers in the Table 4 benchmark (shape target: the ordering
and the gaps, not the third digit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fdps.interaction import OPS_PER_INTERACTION
from repro.perf.machines import A64FX, GENOA, GH200, ProcessorSpec

#: Paper's measured Table 4 values: (speed_gflops, efficiency_percent),
#: keyed by (isa_label, kernel).
PAPER_TABLE4 = {
    ("a64fx-sve", "gravity"): (37.7, 29.4),
    ("a64fx-sve", "hydro_density"): (21.9, 17.1),
    ("a64fx-sve", "hydro_force"): (19.8, 15.4),
    ("genoa-avx2", "gravity"): (65.8, 50.2),
    ("genoa-avx2", "hydro_density"): (15.1, 11.5),
    ("genoa-avx2", "hydro_force"): (29.4, 22.4),
    ("genoa-avx512", "gravity"): (90.6, 69.1),
    ("genoa-avx512", "hydro_density"): (87.6, 66.8),
    ("genoa-avx512", "hydro_force"): (81.5, 62.1),
    ("gh200", "gravity"): (25.4e3, 38.0),
    ("gh200", "hydro_density"): (0.555e3, 0.64),
    ("gh200", "hydro_force"): (1.88e3, 2.8),
}

#: Whether a kernel needs the PPA table lookup (hydro kernels do).
NEEDS_TABLE = {"gravity": False, "hydro_density": True, "hydro_force": True}

#: ISA-level knobs (calibration constants; see module docstring).
_ISA_PARAMS = {
    # (base_pipeline_eff, fission_penalty, lookup_penalty, gather_penalty)
    "a64fx-sve": dict(base=0.78, fission=0.42, lookup=0.62, gather=1.0),
    "genoa-avx2": dict(base=0.78, fission=1.0, lookup=1.0, gather=0.33),
    "genoa-avx512": dict(base=0.78, fission=1.0, lookup=0.95, gather=1.0),
    "gh200": dict(base=0.42, fission=1.0, lookup=0.035, gather=1.0),
}

#: AVX2 runs at half the 512-bit vector width on the same peak silicon
#: (identical theoretical peaks per the paper), so its gravity advantage
#: comes only through the pipeline, not the peak.
_AVX2_WIDTH_FACTOR = 0.78


@dataclass
class KernelPerf:
    """One Table 4 cell: modeled speed and efficiency for a kernel/ISA."""

    isa: str
    kernel: str
    gflops: float
    efficiency_pct: float
    paper_gflops: float
    paper_efficiency_pct: float


def _isa_label(proc: ProcessorSpec, avx2: bool) -> str:
    if proc.isa == "genoa-avx512" and avx2:
        return "genoa-avx2"
    return proc.isa


def kernel_efficiency(proc: ProcessorSpec, kernel: str, avx2: bool = False) -> float:
    """Modeled fraction of single-precision peak achieved by one core."""
    label = _isa_label(proc, avx2)
    p = _ISA_PARAMS[label]
    eff = p["base"]
    # Latency coverage: unroll is bounded by registers; A64FX's 9-cycle FMA
    # with 32 registers cannot be hidden -> loop fission overhead.
    if proc.fma_latency_cycles * 2 > proc.simd_registers // 4:
        eff *= p["fission"]
    if label == "genoa-avx2":
        eff *= _AVX2_WIDTH_FACTOR
    if NEEDS_TABLE[kernel]:
        eff *= p["lookup"]
        eff *= p["gather"] if label == "genoa-avx2" else 1.0
        # Density kernel has the heaviest lookup density per flop.
        if kernel == "hydro_density" and label == "genoa-avx2":
            eff *= 0.55
        if kernel == "hydro_density" and label == "gh200":
            eff *= 0.25
    else:
        # Gravity on AVX2: gather-free, so only the width factor applies.
        pass
    return eff


def kernel_speed_gflops(proc: ProcessorSpec, kernel: str, avx2: bool = False) -> float:
    """Modeled per-core (per-GPU for gh200) speed in Gflops."""
    if proc.isa == "gh200":
        peak = proc.peak_sp_tflops * 1e3   # whole accelerator
    else:
        peak = proc.peak_sp_per_core_gflops
    return kernel_efficiency(proc, kernel, avx2) * peak


def kernel_performance_table() -> list[KernelPerf]:
    """The full modeled Table 4, with the paper's measurements attached."""
    rows: list[KernelPerf] = []
    for proc, avx2 in ((A64FX, False), (GENOA, True), (GENOA, False), (GH200, False)):
        label = _isa_label(proc, avx2)
        for kernel in OPS_PER_INTERACTION:
            eff = kernel_efficiency(proc, kernel, avx2)
            speed = kernel_speed_gflops(proc, kernel, avx2)
            paper_speed, paper_eff = PAPER_TABLE4[(label, kernel)]
            rows.append(
                KernelPerf(
                    isa=label,
                    kernel=kernel,
                    gflops=speed,
                    efficiency_pct=100.0 * eff,
                    paper_gflops=paper_speed,
                    paper_efficiency_pct=paper_eff,
                )
            )
    return rows
