"""Per-step cost model — the breakdown of Fig. 6 / Table 3.

Every part's *functional form* comes from the algorithm analysis the paper
gives in Sec. 5.2; a single calibration at the Table 3 anchor (weakMW2M on
148,896 Fugaku nodes) fixes the constants:

==========================  =================================================
part                        scaling form
==========================  =================================================
interaction (per kernel)    flops = N_loc * n_l * ops;  n_l = n_g + c log2 N
tree construction           ~ N_loc log2(N_loc / n_g)   (memory-latency bound)
LET exchange                ~ N_loc^{2/3} surface * p^{1/3} phases (3D A2A)
particle exchange           same surface scaling + domain-shape factor
kernel-size iteration       2 sweeps of the density pass (Sec. 5.2.5)
other (SF, cooling, misc.)  ~ N_loc
==========================  =================================================

Cross-machine transfer uses the per-ISA kernel model of
:mod:`repro.perf.kernels` and each machine's network parameters, with one
documented per-machine overhead factor calibrated from the machine's own
Table 3 interaction rows.

Beyond the analytic anchor, :func:`comm_seconds_from_ledger` /
:func:`measured_comm_breakdown` price a *measured* :class:`CommStats` byte
ledger from the distributed driver on a machine's network model — exact now
that the particle exchange packs the full migration payload and the LET
buffers carry their headers.  :func:`hydro_gravity_work_ratio` exposes the
Table-3 gas-particle work surcharge used as the domain-decomposition weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.interaction import OPS_PER_INTERACTION
from repro.perf.kernels import kernel_efficiency
from repro.perf.machines import FUGAKU, Machine

#: Paper Table 3 anchor: weakMW2M, 148,896 nodes (wall seconds / PFLOP).
PAPER_TABLE3 = {
    "total": (20.34, 1.67e2),
    "particle_exchange": (3.87, None),
    "tree_gravity": (0.96, None),
    "tree_hydro": (0.12, None),
    "let_gravity": (3.89, None),
    "let_hydro": (1.41, None),
    "interaction_gravity": (1.63, 1.47e2),
    "interaction_hydro_force": (0.34, 4.36),
    "interaction_density": (1.18, 3.81),
    "kernel_size": (3.18, 1.78),
}

_ANCHOR_NODES = 148_896
_ANCHOR_NLOC = 2.0e6
_ANCHOR_N = _ANCHOR_NODES * _ANCHOR_NLOC
_ANCHOR_GAS_FRACTION = 4.9e10 / 3.0e11

def hydro_gravity_work_ratio() -> float:
    """Per-gas-particle hydro work over per-particle gravity work.

    Anchored on the Table 3 rows: the hydro sweeps (density + force +
    kernel-size iteration) are paid per *gas* particle while the gravity
    interaction row is paid per particle, so the decomposition weight of a
    gas particle carries this surcharge (Sec. 5.2: the multisection
    minimizes the summed gravity and hydro work).
    """
    hydro_t = (
        PAPER_TABLE3["interaction_density"][0]
        + PAPER_TABLE3["interaction_hydro_force"][0]
        + PAPER_TABLE3["kernel_size"][0]
    )
    grav_t = PAPER_TABLE3["interaction_gravity"][0]
    per_gas = hydro_t / (_ANCHOR_N * _ANCHOR_GAS_FRACTION)
    per_particle = grav_t / _ANCHOR_N
    return per_gas / per_particle


def comm_seconds_from_ledger(stat, machine: Machine, n_ranks: int) -> float:
    """Modeled wall seconds of one labelled operation class from its
    *measured* byte ledger.

    ``stat`` is a :class:`repro.fdps.comm.CommStats` (duck-typed: needs
    ``n_calls``, ``n_messages``, ``critical_bytes``).  Each call's critical
    path is its busiest rank; the ledger's ``critical_bytes`` accumulates
    exactly those per-call maxima, so the bandwidth term prices what the
    slowest rank actually injected, plus per-message latency for one rank's
    share of the messages.  Because the distributed driver now packs the
    *full* migration payload (every particle field) and the LET buffers
    carry their headers, these byte counts are exact — the term is anchored
    on what actually crossed the communicator rather than on a guessed
    payload shape.
    """
    if stat.n_calls == 0:
        return 0.0
    msgs_per_rank = int(np.ceil(stat.n_messages / max(n_ranks, 1)))
    return machine.network.message_time(
        stat.critical_bytes, n_messages=max(msgs_per_rank, 1)
    )


def measured_comm_breakdown(
    stats: dict, machine: Machine, n_ranks: int
) -> dict[str, float]:
    """Per-label modeled seconds for a whole :attr:`SimComm.stats` ledger."""
    return {
        label: comm_seconds_from_ledger(stat, machine, n_ranks)
        for label, stat in stats.items()
    }


def serve_summary(metrics: dict) -> dict[str, float]:
    """Price a :meth:`ServiceMetrics.as_dict` export against the paper's
    overlap claim.

    The paper excludes DL time from Figs. 6–7 "because it runs
    independently on the pool nodes and fully overlaps"; this summary says
    how true that was for a measured run.  Total inference seconds split
    into a *hidden* part (executed on workers while the main loop kept
    integrating) and an *exposed* part that did land on the main-node
    critical path: inline predictions (sync flushes, spill/oracle overflow
    handling) plus any blocking wait for a late worker.  The overlap
    efficiency is the hidden fraction — 1.0 is the paper's ideal, and a
    ``sync``-transport run scores 0.0 by construction.
    """
    worker_busy = float(sum(metrics.get("worker_busy_s", {}).values()))
    inline = float(metrics.get("inline_predict_s", 0.0))
    exposed_wait = float(metrics.get("exposed_wait_s", 0.0))
    total = worker_busy + inline
    exposed = inline + min(exposed_wait, worker_busy)
    hidden = max(total - exposed, 0.0)
    # Transport copy semantics: bytes that crossed to/from the workers, and
    # — for the shm transport — the fraction of *dispatched* requests that
    # moved zero-copy through the shared ring rather than being pickled
    # down a pipe.  Both legs are counted at dispatch time, so inline
    # predictions (spill/oracle overflow) that never touch the transport
    # stay out of the denominator.
    n_slot = float(metrics.get("n_shm_slot", 0.0))
    n_fallback = float(metrics.get("n_shm_fallback", 0.0))
    dispatched = n_slot + n_fallback
    zero_copy = n_slot / dispatched if dispatched else 0.0
    return {
        "inference_total_s": total,
        "inference_hidden_s": hidden,
        "inference_exposed_s": exposed,
        "overlap_efficiency": hidden / total if total > 0 else 1.0,
        "worker_utilization": float(metrics.get("worker_utilization", 0.0)),
        "latency_steps_p50": float(metrics.get("latency_steps_p50", 0.0)),
        "latency_steps_p95": float(metrics.get("latency_steps_p95", 0.0)),
        "transport_bytes": float(metrics.get("bytes_in", 0.0))
        + float(metrics.get("bytes_out", 0.0)),
        "shm_zero_copy_fraction": (
            zero_copy if metrics.get("shm_n_slots", 0) else 0.0
        ),
    }


#: Per-machine overhead factor: achieved interaction rate at scale over
#: (peak * modeled kernel efficiency).  Calibrated from each machine's own
#: Table 3 gravity row (Fugaku: 147 PFLOP / 1.63 s / 915 PF peak; Rusty:
#: 119 PFLOP / 138 s on 193 nodes; Miyabi: 52.4 PFLOP / 22.6 s on 1024
#: GPUs — i.e. 2.26 TF/GPU achieved against the 25.4 TF asymptotic kernel).
_MACHINE_OVERHEAD = {"Fugaku": 0.30, "Rusty (genoa)": 0.51, "Miyabi": 0.089}


@dataclass
class RunConfig:
    """What the cost model needs to price one global step."""

    machine: Machine
    n_nodes: int
    n_particles: float
    gas_fraction: float = _ANCHOR_GAS_FRACTION
    n_g: int = 2048

    @property
    def n_loc(self) -> float:
        return self.n_particles / self.n_nodes

    @property
    def n_gas(self) -> float:
        return self.n_particles * self.gas_fraction


@dataclass
class StepCostModel:
    """Evaluates the per-part step time for a :class:`RunConfig`."""

    # Interaction-list growth with problem size (calibrated from the
    # 1.47e2 PFLOP gravity count at the anchor: n_l ~ n_g + c log2 N).
    c_walk_gravity: float = field(default=0.0, init=False)
    # Hydro interactions per gas particle: group-shared lists make this far
    # larger than the neighbor count; calibrated from the anchor FLOP rows
    # (3.81 PFLOP density / 4.36 PFLOP force over 4.9e10 gas particles).
    c_density_list: float = field(default=0.0, init=False)
    c_force_list: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        flops = PAPER_TABLE3["interaction_gravity"][1] * 1e15
        n_l = flops / OPS_PER_INTERACTION["gravity"] / _ANCHOR_N
        self.c_walk_gravity = (n_l - 2048) / np.log2(_ANCHOR_N)
        n_gas_anchor = _ANCHOR_N * _ANCHOR_GAS_FRACTION
        self.c_density_list = (
            PAPER_TABLE3["interaction_density"][1] * 1e15
            / OPS_PER_INTERACTION["hydro_density"]
            / n_gas_anchor
        )
        self.c_force_list = (
            PAPER_TABLE3["interaction_hydro_force"][1] * 1e15
            / OPS_PER_INTERACTION["hydro_force"]
            / n_gas_anchor
        )

    # ------------------------------------------------------------- primitives
    def gravity_list_length(self, cfg: RunConfig) -> float:
        return cfg.n_g + self.c_walk_gravity * np.log2(max(cfg.n_particles, 2.0))

    def _interaction_rate(self, cfg: RunConfig, kernel: str) -> float:
        """Achieved node-level flop rate [flop/s] for a kernel at scale."""
        m = cfg.machine
        avx2 = False
        eff = kernel_efficiency(m.processor, kernel, avx2)
        peak = m.peak_sp_node_tflops * 1e12
        return peak * eff * _MACHINE_OVERHEAD[m.name]

    def _anchored(self, key: str, value_at_anchor: float, scale: float) -> float:
        """Paper anchor seconds x a dimensionless scale factor."""
        return PAPER_TABLE3[key][0] * scale

    # ------------------------------------------------------------------ parts
    def flops(self, cfg: RunConfig) -> dict[str, float]:
        """Per-step FLOP counts [flop] per kernel part."""
        n_l_g = self.gravity_list_length(cfg)
        grav = cfg.n_particles * n_l_g * OPS_PER_INTERACTION["gravity"]
        dens = cfg.n_gas * self.c_density_list * OPS_PER_INTERACTION["hydro_density"]
        force = cfg.n_gas * self.c_force_list * OPS_PER_INTERACTION["hydro_force"]
        # Kernel-size iteration: density-like sweeps; its flop volume stays
        # in the anchor's fixed proportion to the density pass (1.78/3.81).
        ksize = PAPER_TABLE3["kernel_size"][1] / PAPER_TABLE3["interaction_density"][1] * dens
        return {
            "interaction_gravity": grav,
            "interaction_density": dens,
            "interaction_hydro_force": force,
            "kernel_size": ksize,
        }

    def breakdown(self, cfg: RunConfig) -> dict[str, float]:
        """Wall seconds per part for one global step."""
        p = cfg.n_nodes
        n_loc = cfg.n_loc
        fl = self.flops(cfg)

        out: dict[str, float] = {}
        # --- compute parts: flops / achieved rate -------------------------------
        out["interaction_gravity"] = fl["interaction_gravity"] / (
            p * self._interaction_rate(cfg, "gravity")
        )
        # Hydro parts run at rates calibrated from their own anchor rows
        # (they are far below the gravity rate: short lists, poor SIMD use).
        for key, kernel in (
            ("interaction_density", "hydro_density"),
            ("interaction_hydro_force", "hydro_force"),
            ("kernel_size", "hydro_density"),
        ):
            anchor_t, anchor_f = PAPER_TABLE3[key]
            anchor_rate = anchor_f * 1e15 / anchor_t / _ANCHOR_NODES  # flop/s/node
            m = cfg.machine
            rel = (
                m.peak_sp_node_tflops
                * kernel_efficiency(m.processor, kernel)
                * _MACHINE_OVERHEAD[m.name]
            ) / (
                FUGAKU.peak_sp_node_tflops
                * kernel_efficiency(FUGAKU.processor, kernel)
                * _MACHINE_OVERHEAD[FUGAKU.name]
            )
            out[key] = fl[key] / (p * anchor_rate * rel)

        # --- tree construction: N_loc log(N_loc/n_g), latency bound -------------
        def tree_scale(n_local: float) -> float:
            return n_local * np.log2(max(n_local / cfg.n_g, 2.0))

        anchor_tree = tree_scale(_ANCHOR_NLOC)
        # Tree traversal is pointer-chasing: scale by the core's random-
        # access speed, not its memory bandwidth.
        mem_rel = cfg.machine.processor.random_access_factor
        out["tree_gravity"] = self._anchored(
            "tree_gravity", 0.0, tree_scale(n_loc) / anchor_tree / mem_rel
        )
        out["tree_hydro"] = self._anchored(
            "tree_hydro",
            0.0,
            tree_scale(n_loc * cfg.gas_fraction)
            / tree_scale(_ANCHOR_NLOC * _ANCHOR_GAS_FRACTION)
            / mem_rel,
        )

        # --- communication parts: surface bytes x p^{1/3} phases ----------------
        net_rel = cfg.machine.network.bandwidth_gb_s / FUGAKU.network.bandwidth_gb_s
        comm_scale = (
            (n_loc / _ANCHOR_NLOC) ** (2.0 / 3.0)
            * (p / _ANCHOR_NODES) ** (1.0 / 3.0)
            / net_rel
        )
        out["let_gravity"] = self._anchored("let_gravity", 0.0, comm_scale)
        out["let_hydro"] = self._anchored("let_hydro", 0.0, comm_scale)
        out["particle_exchange"] = self._anchored("particle_exchange", 0.0, comm_scale)

        # --- everything else (SF, cooling, SN send/recv, barriers) --------------
        # Scales with the per-node particle load over the node's scalar
        # throughput (cores x clock relative to the Fugaku anchor).
        itemized = sum(t for k, (t, _) in PAPER_TABLE3.items() if k != "total")
        residual_anchor = PAPER_TABLE3["total"][0] - itemized
        core_rel = (
            cfg.machine.processor.cores
            * cfg.machine.processor.clock_ghz
            * cfg.machine.sockets_per_node
        ) / (FUGAKU.processor.cores * FUGAKU.processor.clock_ghz)
        out["other"] = residual_anchor * (n_loc / _ANCHOR_NLOC) / core_rel
        return out

    def total(self, cfg: RunConfig) -> float:
        return float(sum(self.breakdown(cfg).values()))

    def total_flops(self, cfg: RunConfig) -> float:
        return float(sum(self.flops(cfg).values()))

    def achieved_pflops(self, cfg: RunConfig) -> float:
        """System-level sustained PFLOPS for the whole step."""
        return self.total_flops(cfg) / self.total(cfg) / 1e15

    def efficiency(self, cfg: RunConfig) -> float:
        """Fraction of the machine's aggregate SP peak."""
        peak = cfg.machine.peak_system_pflops(cfg.n_nodes)
        return self.achieved_pflops(cfg) / peak
