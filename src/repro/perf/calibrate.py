"""Calibrate the Table-4 kernel cost model from measured throughput.

``benchmarks/bench_backend_kernels.py`` records per-kernel throughput
(interactions/s) for every compute backend.  The paper's own convention
(Sec. 4.3) converts interaction counts to FLOPs through the per-kernel
operation counts of Table 4; applying it to the measured numbers yields the
Gflop/s this machine actually sustains per kernel, which this module
compares against the per-ISA efficiency model of :mod:`repro.perf.kernels`.

The resulting per-kernel factors (measured / modeled speed) are the local
calibration of the cost model: multiplying
:func:`repro.perf.kernels.kernel_speed_gflops` by the factor turns the
Table-4-anchored interaction-time predictions of
:mod:`repro.perf.costmodel` into predictions for *this* machine and
backend — the same single-anchor calibration step the paper performs
against the Fugaku Table 3 rows, but driven by a local measurement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.fdps.interaction import OPS_PER_INTERACTION
from repro.perf.kernels import kernel_speed_gflops
from repro.perf.machines import GENOA, ProcessorSpec


@dataclass
class KernelCalibration:
    """One kernel's measured-vs-modeled comparison for one backend."""

    kernel: str
    backend: str
    size: str                    # particle-count label of the best round
    inter_per_s: float           # measured interactions/s
    measured_gflops: float       # through the Table-4 ops convention
    modeled_gflops: float        # per-ISA model prediction (one core)
    factor: float                # measured / modeled

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "backend": self.backend,
            "size": self.size,
            "inter_per_s": self.inter_per_s,
            "measured_gflops": self.measured_gflops,
            "modeled_gflops": self.modeled_gflops,
            "factor": self.factor,
        }


def load_bench(path: str | Path) -> dict:
    """Read a ``BENCH_backend_kernels.json`` payload."""
    return json.loads(Path(path).read_text())


def measured_gflops(inter_per_s: float, kernel: str) -> float:
    """Interactions/s -> Gflop/s via the Table-4 per-interaction op counts."""
    return inter_per_s * OPS_PER_INTERACTION[kernel] / 1e9


def best_throughput(bench: dict, kernel: str, backend: str) -> tuple[str, float]:
    """(size label, interactions/s) of the backend's best measured round."""
    per_size = bench["kernels"][kernel][backend]
    label = max(per_size, key=lambda s: per_size[s]["inter_per_s"])
    return label, float(per_size[label]["inter_per_s"])


def calibrate(
    bench: dict,
    backend: str = "numpy",
    proc: ProcessorSpec = GENOA,
    avx2: bool = False,
) -> list[KernelCalibration]:
    """Per-kernel calibration rows for one backend against one ISA model.

    ``factor`` < 1 means the local kernels run below the modeled per-core
    speed of ``proc`` (a Python reference backend lands orders of magnitude
    below; a jitted backend within one); feeding the factor back through
    :func:`calibrated_kernel_speed` prices interaction work at measured
    local speed in the Sec. 5.2 cost breakdown.
    """
    rows: list[KernelCalibration] = []
    for kernel in OPS_PER_INTERACTION:
        if backend not in bench["kernels"].get(kernel, {}):
            continue
        size, ips = best_throughput(bench, kernel, backend)
        meas = measured_gflops(ips, kernel)
        model = kernel_speed_gflops(proc, kernel, avx2=avx2)
        rows.append(
            KernelCalibration(
                kernel=kernel,
                backend=backend,
                size=size,
                inter_per_s=ips,
                measured_gflops=meas,
                modeled_gflops=model,
                factor=meas / model,
            )
        )
    return rows


def calibration_factors(
    bench: dict,
    backend: str = "numpy",
    proc: ProcessorSpec = GENOA,
    avx2: bool = False,
) -> dict[str, float]:
    """kernel -> measured/modeled speed factor (see :func:`calibrate`)."""
    return {row.kernel: row.factor for row in calibrate(bench, backend, proc, avx2)}


def calibrated_kernel_speed(
    bench: dict,
    kernel: str,
    backend: str = "numpy",
    proc: ProcessorSpec = GENOA,
    avx2: bool = False,
) -> float:
    """Modeled speed rescaled to this machine's measurement, in Gflop/s.

    Exactly ``measured_gflops`` of the best round today; phrased as
    model x factor so cost-model consumers keep using the model's shape
    (per-ISA ordering, kernel ratios) with a locally anchored magnitude.
    """
    factor = calibration_factors(bench, backend, proc, avx2)[kernel]
    return kernel_speed_gflops(proc, kernel, avx2=avx2) * factor
