"""Integrators: the surrogate-coupled fixed-timestep leapfrog (Sec. 3.2).

``SurrogateLeapfrog.step`` is the paper's eight-step loop:

1. identify stars exploding between t and t + dt_global;
2. pick up the (60 pc)^3 box around each and send it to a pool node;
3. first kick, drift, force evaluation, second kick — *without adding any
   feedback energy*;
4. receive predicted particles from pool nodes and replace by particle ID;
5. decompose the domain and exchange particles (bookkeeping here: the
   single-process run keeps all particles, but the decomposition and its
   costs are still computed when enabled);
6. create new stars, calculate cooling;
7. recalculate kernel sizes and hydro forces after the internal-energy
   changes;
8. repeat.

The loop itself — phase order, timer brackets, kick/drift arithmetic, pool
flush/collect placement — lives in :mod:`repro.core.runner.step`
(:func:`~repro.core.runner.step.run_surrogate_step`); this module supplies
the single-rank host: :class:`BaseIntegrator` implements the physics hooks
around a shared :class:`repro.accel.ForceEngine`, and
:class:`SurrogateLeapfrog` adds the SN dispatch/collect hooks over one
:class:`~repro.core.pool.PoolManager`.  The multi-rank host sharing the
same contract is :class:`repro.core.runner.CoupledRunner`.

All spatial work goes through one :class:`repro.accel.ForceEngine`: a single
tree build serves the gravity walk, one neighbor grid serves every
kernel-size sweep, the hydro force pass, the SN-region extraction of step
(2), and the decomposition sampling of step (5) — and step (7) re-evaluates
hydro on the pair lists cached in step (3) (positions identical; only u and
v changed) instead of paying a second full density solve.

The timer labels match the breakdown categories of Fig. 6/Table 3 so the
benchmarks can print the same rows the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel import ForceEngine
from repro.core.pool import PoolManager
from repro.core.runner.step import (
    SurrogateStepLoop,
    energy_kick,
    leapfrog_drift,
    leapfrog_kick,
)
from repro.fdps.domain import DomainDecomposition, process_grid
from repro.fdps.interaction import InteractionCounter
from repro.fdps.particles import ParticleSet, ParticleType
from repro.obs.trace import NULL_TRACER
from repro.physics.cooling import CoolingModel
from repro.physics.star_formation import StarFormationModel
from repro.physics.stellar import exploding_between
from repro.sph.timestep import cfl_timestep
from repro.surrogate.voxelize import extract_region
from repro.util.timers import TimerRegistry


@dataclass
class IntegratorConfig:
    """Numerical and physical switches shared by both integrators."""

    dt: float = 2.0e-3            # fixed global step: 2,000 yr (Sec. 3.2)
    theta: float = 0.5            # tree opening angle
    n_ngb: int = 32               # SPH neighbor target
    courant: float = 0.3
    n_g: int = 256                # interaction-group size
    leaf_size: int = 16
    direct_gravity_below: int = 800   # N under which direct summation wins
    mixed_precision: bool = True
    self_gravity: bool = True
    enable_cooling: bool = True
    enable_star_formation: bool = True
    region_side: float = 60.0     # pc, the surrogate box
    latency_steps: int = 50
    n_pool: int = 50
    n_domains: int = 0            # >0 enables decomposition bookkeeping
    seed: int = 0
    #: Compute backend for the hot kernels (``repro.accel.backends``):
    #: None resolves $REPRO_BACKEND, then "numpy".
    backend: str | None = None


class BaseIntegrator:
    """Physics operators around a shared :class:`ForceEngine` pipeline.

    Implements the physics half of the step contract of
    :mod:`repro.core.runner.step`: forces, kicks, drift, cooling, star
    formation, and the step-(7) hydro refresh.
    """

    def __init__(
        self,
        ps: ParticleSet,
        config: IntegratorConfig | None = None,
        cooling: CoolingModel | None = None,
        star_formation: StarFormationModel | None = None,
        tracer=None,
    ) -> None:
        self.ps = ps
        self.cfg = config or IntegratorConfig()
        self.cooling = cooling or CoolingModel()
        self.star_formation = star_formation or StarFormationModel()
        self.time = 0.0
        self.step_count = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Every timer bracket below doubles as a sim-category span, so the
        # in-process Table-3 rows and the exported trace agree by construction.
        self.timers = TimerRegistry(tracer=self.tracer)
        self.counter = InteractionCounter()
        self.engine = ForceEngine(self.cfg, timers=self.timers, counter=self.counter)
        self.rng = np.random.default_rng(self.cfg.seed)
        self.next_pid = int(ps.pid.max()) + 1 if len(ps) else 0
        self.n_sf_events = 0
        self.n_sn_events = 0
        self.sf_history: list[tuple[float, float]] = []  # (time, mass formed)
        self._grav_acc = np.zeros((len(ps), 3))
        self._hydro_acc = np.zeros((len(ps), 3))
        self._du_dt = np.zeros(len(ps))
        self._vsig = np.zeros(len(ps))
        self._first_forces_done = False

    @property
    def _acc(self) -> np.ndarray:
        return self._grav_acc + self._hydro_acc

    @property
    def forces_ready(self) -> bool:
        """True once stored forces are valid for the current membership."""
        return self._first_forces_done

    # --------------------------------------------------------------- forces
    def _gravity(self, label: str) -> np.ndarray:
        return self.engine.gravity(self.ps, label)

    def _hydro(self, label: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Density + hydro forces on the gas; returns (acc, du_dt, vsig)
        scattered to full-particle arrays and refreshes the gas SPH fields."""
        return self.engine.hydro(self.ps, label)

    def compute_forces(self, label: str = "1st") -> None:
        """Full force evaluation; stores acc/du_dt/vsig for the kicks."""
        if self.cfg.self_gravity:
            self._grav_acc = self._gravity(label)
        else:
            self._grav_acc = np.zeros((len(self.ps), 3))
        self._hydro_acc, self._du_dt, self._vsig = self._hydro(label)
        self._first_forces_done = True

    def kick(self, dt: float) -> None:
        """Velocity + internal-energy kick over ``dt`` (callers pass the
        half step; the primitives keep the historical float grouping)."""
        leapfrog_kick(self.ps.vel, self._acc, dt)
        energy_kick(self.ps.u, self._du_dt, dt)

    def drift(self, dt: float) -> None:
        """Advance positions; every spatial structure is now stale."""
        leapfrog_drift(self.ps.pos, self.ps.vel, dt)
        self.engine.notify_positions_changed()

    # -------------------------------------------------------------- operators
    def apply_cooling(self, dt: float) -> None:
        # Cooling only moves u: the spatial caches stay valid.
        if not self.cfg.enable_cooling:
            return
        ps = self.ps
        gas = np.flatnonzero(ps.where_type(ParticleType.GAS))
        if gas.size == 0:
            return
        with self.timers.measure("Feedback_and_Cooling"):
            ps.u[gas] = self.cooling.integrate(
                ps.u[gas], ps.dens[gas], dt, z=ps.zmet[gas].sum(axis=1)
            )

    def apply_star_formation(self, dt: float) -> None:
        if not self.cfg.enable_star_formation:
            return
        with self.timers.measure("Star Formation"):
            new_ps, events, self.next_pid = self.star_formation.form_stars(
                self.ps, self.time, dt, self.rng, self.next_pid
            )
        if events:
            self.n_sf_events += len(events)
            mass_formed = float(sum(e.star_masses.sum() for e in events))
            self.sf_history.append((self.time, mass_formed))
            self._replace_particle_set(new_ps)

    def refresh_hydro(self) -> None:
        """Step (7): recompute hydro after the internal-energy changes.

        The gravity computed in step (3) is at the current (post-drift)
        positions, so the next first kick can reuse it; only the hydro state
        is stale once cooling/feedback touched u.  When positions are
        untouched since (3) the engine re-evaluates on the cached pair lists
        (no h solve, no neighbor search); if SN replacements moved particles
        it falls back to a full pass, and if star formation changed the
        membership ``_replace_particle_set`` already flagged a full recompute
        for the next step.
        """
        if not self._first_forces_done:
            return
        refreshed = self.engine.refresh_hydro(self.ps, "2nd")
        if refreshed is None:
            refreshed = self._hydro("2nd")
        self._hydro_acc, self._du_dt, self._vsig = refreshed

    def _replace_particle_set(self, new_ps: ParticleSet) -> None:
        """Swap in a set with different membership; force arrays re-size."""
        self.ps = new_ps
        self.engine.notify_membership_changed()
        self._grav_acc = np.zeros((len(new_ps), 3))
        self._hydro_acc = np.zeros((len(new_ps), 3))
        self._du_dt = np.zeros(len(new_ps))
        self._vsig = np.zeros(len(new_ps))
        self._first_forces_done = False

    # ------------------------------------------------------------- diagnostics
    def gas_cfl_timestep(self) -> float:
        ps = self.ps
        gas = ps.where_type(ParticleType.GAS)
        if not gas.any():
            return np.inf
        vsig = np.maximum(self._vsig[gas], ps.csnd[gas])
        dts = cfl_timestep(ps.h[gas], np.maximum(vsig, 1e-300), self.cfg.courant)
        return float(dts.min())

    def diagnostics(self) -> dict:
        ps = self.ps
        return {
            "time": self.time,
            "step": self.step_count,
            "n_particles": len(ps),
            "n_gas": int(ps.where_type(ParticleType.GAS).sum()),
            "n_stars": int(ps.where_type(ParticleType.STAR).sum()),
            "total_mass": ps.total_mass(),
            "kinetic_energy": ps.kinetic_energy(),
            "thermal_energy": ps.thermal_energy(),
            "momentum": ps.momentum().tolist(),
            "n_sf_events": self.n_sf_events,
            "n_sn_events": self.n_sn_events,
        }


class SurrogateLeapfrog(SurrogateStepLoop, BaseIntegrator):
    """The paper's scheme: fixed dt_global + pool-node surrogate for SNe.

    The single-rank host of :func:`repro.core.runner.step
    .run_surrogate_step`; the hooks below are the SN-pipeline half of the
    step contract.
    """

    def __init__(
        self,
        ps: ParticleSet,
        pool: PoolManager,
        config: IntegratorConfig | None = None,
        cooling: CoolingModel | None = None,
        star_formation: StarFormationModel | None = None,
        tracer=None,
    ) -> None:
        super().__init__(ps, config, cooling, star_formation, tracer=tracer)
        self.pool = pool
        self.decomp: DomainDecomposition | None = None

    # ------------------------------------------------------------------ hooks
    def identify_sne(self, dt: float) -> np.ndarray:
        """Step (1): indices of stars exploding in [t, t + dt)."""
        ps = self.ps
        stars = np.flatnonzero(ps.where_type(ParticleType.STAR))
        local = exploding_between(ps.tsn[stars], -np.inf, self.time + dt)
        return stars[local]

    def send_sne(self, exploding: np.ndarray) -> None:
        """Step (2): ship each SN region to a pool node.  The cube query
        runs on the engine's cached gas grid when one is valid (positions
        are unchanged since the last force pass), else it falls back to a
        scan."""
        ps, cfg = self.ps, self.cfg
        for si in exploding:
            center = ps.pos[si].copy()
            region, _idx = extract_region(
                ps, center, cfg.region_side, index=self.engine.index
            )
            self.pool.dispatch(
                region, center, int(ps.pid[si]), float(ps.tsn[si]), self.step_count
            )
            ps.tsn[si] = np.inf  # fires exactly once
            self.n_sn_events += 1

    def flush_pools(self) -> None:
        self.pool.flush(self.step_count)

    def receive_sne(self) -> None:
        """Step (4): merge due predictions back by particle ID."""
        n_replaced = 0
        for _event, predicted in self.pool.collect(self.step_count):
            n_replaced += self.ps.replace_by_pid(predicted)
        if n_replaced:
            # Predicted particles land with new coordinates.
            self.engine.notify_positions_changed()

    def redistribute(self, dt: float) -> None:
        """Step (5): decomposition bookkeeping (the single-process run keeps
        all particles but still computes the decomposition when enabled)."""
        cfg = self.cfg
        if cfg.n_domains > 1:
            with self.timers.measure("Exchange_Particle"):
                grid = process_grid(cfg.n_domains)
                self.decomp = DomainDecomposition.fit(
                    self.ps.pos,
                    grid,
                    weights=self.engine.work_weights(self.ps),
                    sample=20000,
                    index=self.engine.index,
                )
