"""``GalaxySimulation`` — the public facade of the library.

Wires together initial conditions, the surrogate pool (with either a
trained U-Net or the analytic Sedov oracle), and the fixed-timestep
surrogate leapfrog; exposes run control, diagnostics, and snapshot hooks.

Example
-------
::

    from repro import GalaxySimulation, make_mw_mini
    ps = make_mw_mini(n_total=3000, seed=1)
    sim = GalaxySimulation(ps, dt=2e-3)
    sim.run(10)
    print(sim.diagnostics())
"""

from __future__ import annotations

from repro.core.integrator import IntegratorConfig, SurrogateLeapfrog
from repro.core.pool import PoolManager
from repro.fdps.particles import ParticleSet
from repro.physics.cooling import CoolingModel
from repro.physics.star_formation import StarFormationModel
from repro.surrogate.model import SedovBlastOracle, SNSurrogate


class GalaxySimulation:
    """High-level driver for a surrogate-coupled galaxy run.

    Parameters
    ----------
    ps : initial particles (see :mod:`repro.ic`).
    dt : the fixed global timestep [Myr]; paper value 2e-3 (2,000 yr).
    surrogate : optional :class:`SNSurrogate`; defaults to the analytic
        Sedov oracle on a modest grid, so a simulation runs out of the box
        with physically sensible SN behaviour.  Pass a U-Net-backed
        surrogate (see ``examples/train_surrogate.py``) for the paper's
        trained-model path.
    n_pool / latency_steps : the pool sizing rule of Sec. 3.2 — by default
        latency = n_pool so every SN region spends 0.1 Myr worth of global
        steps in flight.
    """

    def __init__(
        self,
        ps: ParticleSet,
        dt: float = 2.0e-3,
        surrogate: SNSurrogate | None = None,
        n_pool: int = 50,
        latency_steps: int | None = None,
        config: IntegratorConfig | None = None,
        cooling: CoolingModel | None = None,
        star_formation: StarFormationModel | None = None,
        surrogate_grid: int = 16,
        seed: int = 0,
    ) -> None:
        cfg = config or IntegratorConfig()
        cfg.dt = dt
        cfg.n_pool = n_pool
        cfg.latency_steps = latency_steps if latency_steps is not None else n_pool
        cfg.seed = seed
        if surrogate is None:
            horizon = cfg.latency_steps * dt  # prediction horizon (0.1 Myr dflt)
            surrogate = SNSurrogate(
                oracle=SedovBlastOracle(t_after=horizon),
                n_grid=surrogate_grid,
                side=cfg.region_side,
            )
        self.pool = PoolManager(
            surrogate=surrogate,
            n_pool=cfg.n_pool,
            latency_steps=cfg.latency_steps,
            seed=seed,
        )
        self.integrator = SurrogateLeapfrog(
            ps, self.pool, cfg, cooling=cooling, star_formation=star_formation
        )

    # ------------------------------------------------------------- delegation
    @property
    def ps(self) -> ParticleSet:
        return self.integrator.ps

    @property
    def time(self) -> float:
        return self.integrator.time

    @property
    def step_count(self) -> int:
        return self.integrator.step_count

    def run(self, n_steps: int) -> None:
        self.integrator.run(n_steps)

    def run_until(self, t_end: float, max_steps: int = 10_000_000) -> None:
        self.integrator.run_until(t_end, max_steps)

    def diagnostics(self) -> dict:
        out = self.integrator.diagnostics()
        out["pool"] = self.pool.summary()
        return out

    def timing_breakdown(self) -> dict[str, float]:
        """Accumulated per-part wall-clock seconds (Fig. 6 categories)."""
        return self.integrator.timers.totals()

    def star_formation_rate(self, window: float = 1.0) -> float:
        """SFR [M_sun/Myr] over the trailing ``window`` Myr."""
        hist = self.integrator.sf_history
        t0 = self.time - window
        formed = sum(m for (t, m) in hist if t >= t0)
        return formed / window if window > 0 else 0.0
