"""``GalaxySimulation`` — the public facade of the library.

Wires together initial conditions, the surrogate inference service (with
either a trained U-Net or the analytic Sedov oracle), and the
fixed-timestep surrogate leapfrog; exposes run control, diagnostics,
snapshot hooks, and checkpoint/restore.

Example
-------
::

    from repro import GalaxySimulation, make_mw_mini
    ps = make_mw_mini(n_total=3000, seed=1)
    sim = GalaxySimulation(ps, dt=2e-3)
    sim.run(10)
    print(sim.diagnostics())
"""

from __future__ import annotations

from pathlib import Path

from repro.core.integrator import IntegratorConfig, SurrogateLeapfrog
from repro.core.pool import PoolManager
from repro.fdps.particles import ParticleSet
from repro.physics.cooling import CoolingModel
from repro.physics.star_formation import StarFormationModel
from repro.serve import (
    FaultMode,
    FaultPlan,
    OverflowPolicy,
    SupervisionConfig,
    SurrogateServer,
)
from repro.surrogate.model import SedovBlastOracle, SNSurrogate


class GalaxySimulation:
    """High-level driver for a surrogate-coupled galaxy run.

    Parameters
    ----------
    ps : initial particles (see :mod:`repro.ic`).
    dt : the fixed global timestep [Myr]; paper value 2e-3 (2,000 yr).
    surrogate : optional :class:`SNSurrogate`; defaults to the analytic
        Sedov oracle on a modest grid, so a simulation runs out of the box
        with physically sensible SN behaviour.  Pass a U-Net-backed
        surrogate (see ``examples/train_surrogate.py``) for the paper's
        trained-model path.
    surrogate_model_path : path to a trained U-Net export
        (:func:`repro.ml.serialize.save_model`); builds the trained-model
        surrogate on ``surrogate_grid`` directly, and — because the loaded
        engine remembers its path — serve workers and checkpoints carry a
        ``kind="model"`` :class:`~repro.serve.SurrogateSpec` instead of a
        pickled network.  Mutually exclusive with ``surrogate``.
    n_pool / latency_steps : the pool sizing rule of Sec. 3.2 — by default
        latency = n_pool so every SN region spends 0.1 Myr worth of global
        steps in flight.
    serve_transport : ``"sync"`` (in-process, the deterministic default),
        ``"process"`` (worker processes fed through pickled queues), or
        ``"shm"`` (worker processes reading/writing a zero-copy
        shared-memory ring) — see the transport table in
        :mod:`repro.serve`.  All produce bit-identical particle state for
        the same seeds.
    serve_workers / serve_max_batch / serve_max_wait_steps : service sizing
        (worker processes, batch coalescing, deadline-aware flush).
    serve_shm_slots / serve_shm_slot_particles : ``shm`` ring sizing; size
        ``serve_shm_slot_particles`` to at least the largest expected SN
        region, or bigger requests silently fall back to the pickled queue
        (counted in the service metrics' ``n_shm_fallback``).
    overflow_policy : what :class:`PoolManager` does when every pool node
        is busy — ``"queue"`` (legacy), ``"block"``, ``"spill"``, or
        ``"oracle"`` (:class:`repro.serve.OverflowPolicy`).
    serve_fault_mode / serve_supervision : worker fault tolerance —
        ``"recover"`` (default: restart dead workers, re-dispatch lost
        batches, degrade to inline inference as last resort) or ``"raise"``
        (surface the first worker fault); :class:`repro.serve
        .SupervisionConfig` tunes timeouts and backoff.
    serve_fault_plan : scripted fault injection for chaos testing
        (:class:`repro.serve.FaultPlan` or its string form); ``None``
        reads ``REPRO_SERVE_FAULTS`` from the environment.
    tracer : optional :class:`repro.obs.Tracer`.  Threads span tracing
        through the integrator's phase timers, the force-engine kernels,
        and the serve pipeline (dispatch/claim/batch/recovery); export
        with :meth:`write_trace` and render with ``python -m repro.obs
        report``.  The default :data:`~repro.obs.NULL_TRACER` keeps every
        bracket a no-op; tracing never changes particle state (asserted
        bit-identical in ``benchmarks/bench_obs_overhead.py``).
    n_ranks : >1 runs the coupled multi-rank path
        (:class:`repro.core.runner.CoupledRunner`): simulated main ranks
        with genuine domain migration, cross-rank SN-region ghosts, and
        one shared inference service with per-rank pool clients.
        Bit-identical to ``n_ranks=1`` for the same seeds (with the
        default ``coupled_force_mode="global"``).
    use_torus : (coupled only) route the driver collectives through the
        3-phase 3D torus alltoallv.
    coupled_force_mode : (coupled only) ``"global"`` or ``"distributed"``
        — see :class:`~repro.core.runner.CoupledRunner`.
    """

    def __init__(
        self,
        ps: ParticleSet,
        dt: float = 2.0e-3,
        surrogate: SNSurrogate | None = None,
        surrogate_model_path: str | Path | None = None,
        n_pool: int = 50,
        latency_steps: int | None = None,
        config: IntegratorConfig | None = None,
        cooling: CoolingModel | None = None,
        star_formation: StarFormationModel | None = None,
        surrogate_grid: int = 16,
        seed: int = 0,
        serve_transport: str = "sync",
        serve_workers: int = 2,
        serve_max_batch: int = 8,
        serve_max_wait_steps: int = 1,
        serve_shm_slots: int = 32,
        serve_shm_slot_particles: int = 4096,
        overflow_policy: OverflowPolicy | str = OverflowPolicy.QUEUE,
        serve_fault_mode: FaultMode | str = FaultMode.RECOVER,
        serve_fault_plan: "FaultPlan | str | None" = None,
        serve_supervision: "SupervisionConfig | None" = None,
        tracer=None,
        n_ranks: int = 1,
        use_torus: bool = False,
        coupled_force_mode: str = "global",
    ) -> None:
        from repro.obs.trace import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        cfg = config or IntegratorConfig()
        cfg.dt = dt
        cfg.n_pool = n_pool
        cfg.latency_steps = latency_steps if latency_steps is not None else n_pool
        cfg.seed = seed
        horizon = cfg.latency_steps * dt      # prediction horizon (0.1 Myr dflt)
        if surrogate_model_path is not None:
            if surrogate is not None:
                raise ValueError(
                    "pass either surrogate or surrogate_model_path, not both"
                )
            from repro.ml.serialize import InferenceEngine

            surrogate = SNSurrogate(
                predictor=InferenceEngine.load(surrogate_model_path),
                n_grid=surrogate_grid,
                side=cfg.region_side,
            )
        if surrogate is None:
            surrogate = SNSurrogate(
                oracle=SedovBlastOracle(t_after=horizon),
                n_grid=surrogate_grid,
                side=cfg.region_side,
            )
        server = SurrogateServer(
            surrogate=surrogate,
            transport=serve_transport,
            n_workers=serve_workers,
            max_batch=serve_max_batch,
            max_wait_steps=serve_max_wait_steps,
            shm_slots=serve_shm_slots,
            shm_slot_particles=serve_shm_slot_particles,
            fault_mode=serve_fault_mode,
            fault_plan=serve_fault_plan,
            supervision=serve_supervision,
            tracer=self.tracer,
        )
        self.server = server
        if n_ranks > 1:
            from repro.core.runner.coupled import CoupledRunner

            self.pool = None
            self.integrator = CoupledRunner(
                ps,
                server,
                n_ranks=n_ranks,
                config=cfg,
                cooling=cooling,
                star_formation=star_formation,
                tracer=self.tracer,
                use_torus=use_torus,
                force_mode=coupled_force_mode,
                overflow_policy=overflow_policy,
                horizon=horizon,
            )
        else:
            self.pool = PoolManager(
                surrogate=surrogate,
                n_pool=cfg.n_pool,
                latency_steps=cfg.latency_steps,
                seed=seed,
                server=server,
                overflow_policy=overflow_policy,
                horizon=horizon,
            )
            self.integrator = SurrogateLeapfrog(
                ps, self.pool, cfg, cooling=cooling,
                star_formation=star_formation, tracer=self.tracer,
            )

    # ------------------------------------------------------------- delegation
    @property
    def ps(self) -> ParticleSet:
        return self.integrator.ps

    @property
    def time(self) -> float:
        return self.integrator.time

    @property
    def step_count(self) -> int:
        return self.integrator.step_count

    def run(self, n_steps: int) -> None:
        self.integrator.run(n_steps)

    def run_until(self, t_end: float, max_steps: int = 10_000_000) -> None:
        self.integrator.run_until(t_end, max_steps)

    def diagnostics(self) -> dict:
        out = self.integrator.diagnostics()
        out["pool"] = (
            self.pool.summary()
            if self.pool is not None
            else self.integrator.pool_summary()
        )
        return out

    def timing_breakdown(self) -> dict[str, float]:
        """Accumulated per-part wall-clock seconds (Fig. 6 categories)."""
        return self.integrator.timers.totals()

    # ---------------------------------------------------------- observability
    def attach_service_metrics(self) -> None:
        """Attach the serve pipeline's versioned metrics export to the trace.

        Call once near the end of a traced run (before :meth:`write_trace`)
        so ``python -m repro.obs report`` can price hidden vs exposed
        inference from the same counters ``metrics_dict`` reports.  A no-op
        under the null tracer.
        """
        if not self.tracer.enabled:
            return
        self.tracer.attach_meta(
            "service_metrics",
            self.server.metrics.to_dict(
                max_batch=self.server.scheduler.max_batch,
                n_workers=self.server.n_workers,
            ),
        )

    def write_trace(self, run_dir: str | Path) -> Path:
        """Export the run's trace stream (see :mod:`repro.obs.export`).

        Attaches the service metrics first, so the written stream is
        self-contained for the run report.  Requires an enabled tracer.
        """
        from repro.obs.export import write_run

        if not self.tracer.enabled:
            raise RuntimeError(
                "write_trace needs an enabled tracer: construct the "
                "simulation with tracer=repro.obs.Tracer()"
            )
        self.attach_service_metrics()
        return write_run(self.tracer, run_dir)

    def star_formation_rate(self, window: float = 1.0) -> float:
        """SFR [M_sun/Myr] over the trailing ``window`` Myr."""
        hist = self.integrator.sf_history
        t0 = self.time - window
        formed = sum(m for (t, m) in hist if t >= t0)
        return formed / window if window > 0 else 0.0

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the inference service (process-transport workers)."""
        if self.pool is not None:
            self.pool.close()
        else:
            self.server.close()

    def __enter__(self) -> "GalaxySimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------ checkpoint/restore
    def save(self, path: str | Path) -> Path:
        """Checkpoint this run atomically; returns the final ``.npz`` path
        (see :func:`repro.fdps.io.save_simulation`)."""
        from repro.fdps.io import save_simulation

        if self.pool is None:
            raise NotImplementedError(
                "checkpointing a coupled (n_ranks > 1) run is not supported "
                "yet; the state is bit-identical to n_ranks=1, so save from "
                "a single-rank run"
            )
        return save_simulation(self, path)

    @classmethod
    def restore(cls, path: str | Path, **overrides) -> "GalaxySimulation":
        """Rebuild a live run from a :meth:`save` checkpoint.

        Restores the particle state, the integrator clock (``time`` /
        ``step_count``), ``next_pid``, the SN/SF event counters, the star
        -formation RNG state, and — when the checkpoint carries them — the
        stored force arrays, so the first step after a restore is
        bit-identical to the step an uninterrupted run would have taken.
        In-flight pool *predictions* are not part of a checkpoint (the
        paper restarts from the last global step); the save path instead
        resets those stars' ``tsn`` to their explosion times, so the
        restored integrator re-dispatches them — overdue SNe fire on the
        first step after a restore and no event is lost.

        ``overrides`` are passed through to the constructor (e.g. a
        different ``serve_transport`` or a freshly loaded ``surrogate``).
        """
        from repro.fdps.io import load_checkpoint

        from repro.serve import SurrogateSpec
        from repro.util.logging import get_logger

        state = load_checkpoint(path)
        meta = state.header.get("extra", {})
        kwargs: dict = {
            "dt": meta.get("dt", 2.0e-3),
            "n_pool": meta.get("n_pool", 50),
            "latency_steps": meta.get("latency_steps"),
            "seed": meta.get("seed", 0),
        }
        if "integrator_config" in meta:
            kwargs["config"] = IntegratorConfig(**meta["integrator_config"])
        if "overflow_policy" in meta:
            kwargs["overflow_policy"] = meta["overflow_policy"]
        serve_meta = meta.get("serve") or {}
        if serve_meta:
            kwargs["serve_transport"] = serve_meta["transport"]
            kwargs["serve_workers"] = serve_meta["n_workers"]
            kwargs["serve_max_batch"] = serve_meta["max_batch"]
            kwargs["serve_max_wait_steps"] = serve_meta["max_wait_steps"]
            if "shm_slots" in serve_meta:          # absent in older checkpoints
                kwargs["serve_shm_slots"] = serve_meta["shm_slots"]
                kwargs["serve_shm_slot_particles"] = serve_meta["shm_slot_particles"]
        if meta.get("surrogate_spec") is not None:
            kwargs["surrogate"] = SurrogateSpec(**meta["surrogate_spec"]).build()
        elif "surrogate_spec" in meta and "surrogate" not in overrides:
            get_logger("simulation").warning(
                "checkpoint %s has no serializable surrogate spec (predictor"
                "-backed run); restoring with the default Sedov oracle — pass "
                "restore(surrogate=...) to resume the original model", path,
            )
        kwargs.update(overrides)
        sim = cls(state.ps, **kwargs)
        integ = sim.integrator
        integ.time = float(state.header.get("time", 0.0))
        integ.step_count = int(state.header.get("step", 0))
        if "next_pid" in meta:
            integ.next_pid = int(meta["next_pid"])
        integ.n_sn_events = int(meta.get("n_sn_events", 0))
        integ.n_sf_events = int(meta.get("n_sf_events", 0))
        if "rng_state" in meta:
            integ.rng.bit_generator.state = meta["rng_state"]
        force_keys = ("grav_acc", "hydro_acc", "du_dt", "vsig")
        if all(k in state.arrays for k in force_keys):
            integ._grav_acc = state.arrays["grav_acc"]
            integ._hydro_acc = state.arrays["hydro_acc"]
            integ._du_dt = state.arrays["du_dt"]
            integ._vsig = state.arrays["vsig"]
            integ._first_forces_done = True
        return sim
