"""Pool-node management: the main/pool communicator split of Sec. 3.1.

The MPI world is split in two: *main* ranks integrate the galaxy, *pool*
ranks run U-Net inference on SN regions.  This module reproduces the
protocol on the simulated communicator:

* :meth:`PoolManager.dispatch` — a detected SN's (60 pc)^3 region is sent
  (point-to-point) to the next free pool node; the main loop continues
  without waiting;
* :meth:`PoolManager.collect` — ``latency_steps`` (default 50) global steps
  later the predicted particles come back and are merged into the galaxy by
  particle ID (:meth:`ParticleSet.replace_by_pid`).

Prediction work is *executed* lazily at collect time — the in-process stand
-in for "fully overlapped" pool-node computation: by construction it never
adds wall-clock time to the main-node critical path, which is exactly the
paper's performance claim (the DL time is excluded from Figs. 6–7 "because
it runs independently on the pool nodes and fully overlaps").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.events import SNEvent
from repro.fdps.comm import SimComm
from repro.fdps.particles import ParticleSet
from repro.surrogate.model import SNSurrogate


@dataclass
class _PendingJob:
    event: SNEvent
    region: ParticleSet


@dataclass
class PoolManager:
    """Round-robin dispatcher over ``n_pool`` surrogate workers."""

    surrogate: SNSurrogate
    n_pool: int = 50
    latency_steps: int = 50
    seed: int = 0
    comm: SimComm | None = None     # optional: counts pool traffic bytes
    main_rank: int = 0

    _jobs: list[_PendingJob] = field(default_factory=list)
    _busy_until: dict[int, int] = field(default_factory=dict)
    _rng: np.random.Generator = field(init=False, repr=False)
    _next: int = 0
    events: list[SNEvent] = field(default_factory=list)
    n_overflow: int = 0  # SNe that had to wait for a free pool node

    def __post_init__(self) -> None:
        if self.n_pool < 1:
            raise ValueError("need at least one pool node")
        self._rng = np.random.default_rng(self.seed)
        if self.comm is not None and self.comm.n_ranks < 1 + self.n_pool:
            raise ValueError("communicator too small for main + pool ranks")

    # ------------------------------------------------------------------ sizes
    @property
    def n_in_flight(self) -> int:
        return len(self._jobs)

    def free_pool_rank(self, step: int) -> int | None:
        """First pool rank idle at ``step`` (round-robin scan)."""
        for k in range(self.n_pool):
            cand = (self._next + k) % self.n_pool
            if self._busy_until.get(cand, -1) <= step:
                return cand
        return None

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        region: ParticleSet,
        center: np.ndarray,
        star_pid: int,
        time: float,
        step: int,
    ) -> SNEvent:
        """Send one SN region to a pool node (step 2 of the Sec. 3.2 loop)."""
        rank = self.free_pool_rank(step)
        if rank is None:
            # All pool nodes busy: steal the next one anyway but record the
            # overflow — with the paper's sizing (n_pool = latency) this
            # can only happen when >1 SN fires in one step per pool node.
            rank = self._next % self.n_pool
            self.n_overflow += 1
        self._next = (rank + 1) % self.n_pool
        self._busy_until[rank] = step + self.latency_steps

        nbytes = sum(int(v.nbytes) for v in region.data.values())
        event = SNEvent(
            star_pid=int(star_pid),
            center=np.asarray(center, dtype=np.float64).copy(),
            time=float(time),
            dispatch_step=int(step),
            return_step=int(step) + self.latency_steps,
            pool_rank=int(rank),
            n_region_particles=len(region),
            region_bytes=nbytes,
        )
        if self.comm is not None:
            self.comm.send(
                self.main_rank, 1 + rank, region.pos.copy(), tag=event.dispatch_step
            )
        self._jobs.append(_PendingJob(event=event, region=region))
        self.events.append(event)
        return event

    # ----------------------------------------------------------------- collect
    def collect(self, step: int) -> list[tuple[SNEvent, ParticleSet]]:
        """Predictions due at ``step`` (step 4 of the loop).

        Runs the surrogate for each due region and returns
        (event, predicted particles) pairs; the caller merges them with
        ``replace_by_pid``.
        """
        due = [j for j in self._jobs if j.event.return_step <= step]
        self._jobs = [j for j in self._jobs if j.event.return_step > step]
        out: list[tuple[SNEvent, ParticleSet]] = []
        for job in due:
            predicted = self.surrogate.predict_particles(
                job.region, job.event.center, self._rng
            )
            job.event.returned = True
            if self.comm is not None:
                self.comm.send(
                    1 + job.event.pool_rank,
                    self.main_rank,
                    predicted.pos.copy(),
                    tag=job.event.return_step,
                )
                # drain the mailboxes so the simulated comm doesn't grow
                self.comm.recv(1 + job.event.pool_rank)
                self.comm.recv(self.main_rank)
            out.append((job.event, predicted))
        return out

    # -------------------------------------------------------------- statistics
    def summary(self) -> dict:
        returned = sum(1 for e in self.events if e.returned)
        return {
            "n_events": len(self.events),
            "n_returned": returned,
            "n_in_flight": self.n_in_flight,
            "n_overflow": self.n_overflow,
            "total_region_particles": sum(e.n_region_particles for e in self.events),
            "total_region_bytes": sum(e.region_bytes for e in self.events),
        }
