"""Pool-node management: the main/pool communicator split of Sec. 3.1.

The MPI world is split in two: *main* ranks integrate the galaxy, *pool*
ranks run U-Net inference on SN regions.  :class:`PoolManager` keeps the
paper's protocol — :meth:`dispatch` ships a detected SN's (60 pc)^3 region
to the next free pool node, :meth:`collect` merges the prediction back
``latency_steps`` global steps later — but it is now a *thin client* over a
:class:`repro.serve.SurrogateServer`:

* regions cross the transport in the packed-``FIELDS`` wire format of
  :mod:`repro.serve.wire`, and exactly those bytes are charged to the
  :class:`SimComm` ledger (label ``"pool_p2p"``);
* the server's scheduler coalesces concurrent SNe into batches and its
  ``process`` transport runs them on worker processes genuinely overlapped
  with the main loop — the default ``sync`` transport executes at flush
  time in-process, preserving the old deterministic critical path for
  tests (per-event Gibbs seeding makes both transports bit-identical);
* pool-node exhaustion is handled by an explicit
  :class:`~repro.serve.OverflowPolicy` (queue / block / spill / oracle)
  instead of the old silent counter — no SN event is ever dropped without
  at least an oracle-fallback prediction.

Multi-rank coupling (:class:`repro.core.runner.CoupledRunner`) runs one
``PoolManager`` *per main rank* as a client of one shared server: requests
are rank-tagged via ``client_id`` (so each rank's :meth:`collect` pops only
its own events), the pool-node occupancy calendar is shared through one
:class:`PoolOccupancy` (no double-booking across ranks), and
``pool_rank_base`` places the pool nodes after *all* main ranks in the
world communicator — every rank's traffic joins the same ``pool_p2p``
ledger.  The defaults (private occupancy, ``pool_rank_base=1``,
``client_id=None``) reproduce the single-rank layout byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.events import SNEvent
from repro.fdps.comm import SimComm
from repro.fdps.particles import ParticleSet
from repro.serve import OverflowPolicy, SurrogateServer
from repro.surrogate.model import SedovBlastOracle, SNSurrogate


@dataclass
class PoolOccupancy:
    """The pool nodes' shared busy calendar (round-robin, per-step grain).

    One instance per *server*: single-rank runs keep a private one, the
    coupled runner passes one object to every rank's :class:`PoolManager`
    so two ranks can never book the same pool node for overlapping
    latency windows.
    """

    n_pool: int
    busy_until: dict[int, int] = field(default_factory=dict)
    next_rank: int = 0

    def free_rank(self, step: int) -> int | None:
        """First pool rank idle at ``step`` (round-robin scan)."""
        for k in range(self.n_pool):
            cand = (self.next_rank + k) % self.n_pool
            if self.busy_until.get(cand, -1) <= step:
                return cand
        return None

    def book(self, rank: int, until_step: int) -> None:
        self.next_rank = (rank + 1) % self.n_pool
        self.busy_until[rank] = until_step


@dataclass
class PoolManager:
    """Round-robin dispatcher over ``n_pool`` surrogate workers."""

    surrogate: SNSurrogate | None = None
    n_pool: int = 50
    latency_steps: int = 50
    seed: int = 0
    comm: SimComm | None = None     # optional: counts pool traffic bytes
    main_rank: int = 0
    #: Inference service; built lazily (sync transport) from ``surrogate``
    #: when not supplied.  Pass a ``process``-transport server for true
    #: pool-node overlap.
    server: SurrogateServer | None = None
    overflow_policy: OverflowPolicy | str = OverflowPolicy.QUEUE
    #: Prediction horizon [Myr] (latency_steps * dt).  PoolManager cannot
    #: derive it (it never sees dt), so the driver passes it; it sizes the
    #: drop-to-oracle fallback's blast age.  None falls back to the paper's
    #: 0.1 Myr.
    horizon: float | None = None
    #: Surrogate used by the drop-to-oracle policy; defaults to a Sedov
    #: oracle matching the main surrogate's grid at ``horizon``.
    fallback_oracle: SNSurrogate | None = None
    #: World rank of pool node 0 on ``comm``.  The single-rank layout puts
    #: the pool right after the one main rank (base 1); the coupled layout
    #: places all ``n_ranks`` main ranks first (base ``n_ranks``).
    pool_rank_base: int = 1
    #: Client tag for multi-rank runs: when set, the server hands this
    #: manager only its own events back (see ``SurrogateServer.collect``).
    client_id: int | None = None
    #: Shared busy calendar; None builds a private one (single-rank layout).
    occupancy: PoolOccupancy | None = None

    events: list[SNEvent] = field(default_factory=list)
    _by_event_id: dict[int, SNEvent] = field(default_factory=dict, repr=False)
    _owns_server: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_pool < 1:
            raise ValueError("need at least one pool node")
        if self.comm is not None and self.comm.n_ranks < self.pool_rank_base + self.n_pool:
            raise ValueError("communicator too small for main + pool ranks")
        if self.occupancy is None:
            self.occupancy = PoolOccupancy(n_pool=self.n_pool)
        elif self.occupancy.n_pool != self.n_pool:
            raise ValueError("shared occupancy sized for a different pool")
        self.overflow_policy = OverflowPolicy.parse(self.overflow_policy)
        if self.server is None:
            if self.surrogate is None:
                raise ValueError("need a surrogate or a SurrogateServer")
            self.server = SurrogateServer(surrogate=self.surrogate, transport="sync")
            self._owns_server = True

    # ------------------------------------------------------------------ sizes
    @property
    def n_in_flight(self) -> int:
        return self.server.n_outstanding

    @property
    def n_overflow(self) -> int:
        """SNe that found every pool node busy (any policy)."""
        return self.server.metrics.n_overflow

    def free_pool_rank(self, step: int) -> int | None:
        """First pool rank idle at ``step`` (round-robin scan)."""
        return self.occupancy.free_rank(step)

    # --------------------------------------------------------------- dispatch
    def dispatch(
        self,
        region: ParticleSet,
        center: np.ndarray,
        star_pid: int,
        time: float,
        step: int,
    ) -> SNEvent:
        """Send one SN region to a pool node (step 2 of the Sec. 3.2 loop)."""
        metrics = self.server.metrics
        rank = self.free_pool_rank(step)
        handling = "pooled"
        effective_step = step
        if rank is None:
            metrics.n_overflow += 1
            policy = self.overflow_policy
            if policy is OverflowPolicy.QUEUE:
                # Legacy: steal the next node anyway — with the paper's
                # sizing (n_pool = latency) this only happens when >1 SN
                # fires per step per pool node.
                rank = self.occupancy.next_rank % self.n_pool
                handling = "queued"
            elif policy is OverflowPolicy.BLOCK:
                busy = self.occupancy.busy_until
                rank = min(busy, key=busy.get)
                effective_step = busy[rank]
                metrics.n_blocked += 1
                metrics.blocked_stall_steps += effective_step - step
                handling = "blocked"
            elif policy is OverflowPolicy.SPILL:
                rank = -1
                metrics.n_spilled += 1
                handling = "spilled"
            else:  # OverflowPolicy.ORACLE
                rank = -1
                metrics.n_oracle_fallback += 1
                handling = "oracle"
        if rank >= 0:
            self.occupancy.book(rank, effective_step + self.latency_steps)
        return_step = effective_step + self.latency_steps

        request = self.server.submit(
            region,
            center,
            star_pid=int(star_pid),
            dispatch_step=int(step),
            return_step=int(return_step),
            base_seed=self.seed,
            client=self.client_id,
        )
        if handling == "spilled":
            self.server.predict_inline(request)
        elif handling == "oracle":
            self.server.predict_inline(request, self._oracle_surrogate())

        event = SNEvent(
            star_pid=int(star_pid),
            center=np.asarray(center, dtype=np.float64).copy(),
            time=float(time),
            dispatch_step=int(step),
            return_step=int(return_step),
            pool_rank=int(rank),
            n_region_particles=len(region),
            # The request's wire bytes (cached encode) — the same figure the
            # pool_p2p ledger charges, so summary() and CommStats agree.
            region_bytes=int(request.to_buffer().nbytes),
            event_id=request.event_id,
            seed=self.seed,
            handling=handling,
        )
        if self.comm is not None and rank >= 0:
            self.comm.send(
                self.main_rank,
                self.pool_rank_base + rank,
                request.to_buffer(),
                tag=event.dispatch_step,
                label="pool_p2p",
            )
        self.events.append(event)
        self._by_event_id[event.event_id] = event
        return event

    def _oracle_surrogate(self) -> SNSurrogate:
        if self.fallback_oracle is None:
            template = self.server.local_surrogate
            if template.oracle is not None:
                self.fallback_oracle = template
            else:
                self.fallback_oracle = SNSurrogate(
                    oracle=SedovBlastOracle(
                        t_after=self.horizon if self.horizon is not None else 0.1
                    ),
                    n_grid=template.n_grid,
                    side=template.side,
                    gibbs_sweeps=template.gibbs_sweeps,
                )
        return self.fallback_oracle

    # ------------------------------------------------------------------ flush
    def flush(self, step: int) -> None:
        """Ship due batches to the workers *now* (called right after the
        dispatch loop so inference overlaps the force computation).

        A no-op for the sync transport: flushing there would *execute* the
        predictions inline inside the caller's step-(2) timer, moving DL
        seconds from the Receive_SNe breakdown row (where the legacy lazy
        path paid them at collect time) into Send_SNe.  Collect still ticks,
        so sync timing categories match the pre-service code exactly.
        """
        if self.server.transport_name != "sync":
            self.server.tick(step)

    # ----------------------------------------------------------------- collect
    def collect(self, step: int) -> list[tuple[SNEvent, ParticleSet]]:
        """Predictions due at ``step`` (step 4 of the loop).

        Returns (event, predicted particles) pairs; the caller merges them
        with ``replace_by_pid``.  With the process transport the work
        already happened on the pool workers — a late prediction blocks
        here and the wait is charged to the service metrics.
        """
        out: list[tuple[SNEvent, ParticleSet]] = []
        for response in self.server.collect(step, client=self.client_id):
            event = self._by_event_id.pop(response.event_id)
            event.returned = True
            if self.comm is not None and event.pool_rank >= 0:
                self.comm.send(
                    self.pool_rank_base + event.pool_rank,
                    self.main_rank,
                    response.to_buffer(),
                    tag=event.return_step,
                    label="pool_p2p",
                )
                # drain the mailboxes so the simulated comm doesn't grow
                self.comm.recv(self.pool_rank_base + event.pool_rank)
                self.comm.recv(self.main_rank)
            out.append((event, response.particles))
        return out

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the service (terminates process-transport workers)."""
        if self.server is not None:
            self.server.close()

    def __enter__(self) -> "PoolManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- statistics
    def summary(self) -> dict:
        returned = sum(1 for e in self.events if e.returned)
        return {
            "n_events": len(self.events),
            "n_returned": returned,
            "n_in_flight": self.n_in_flight,
            "n_overflow": self.n_overflow,
            "total_region_particles": sum(e.n_region_particles for e in self.events),
            "total_region_bytes": sum(e.region_bytes for e in self.events),
            "service": self.server.metrics_dict(),
        }
