"""``CoupledRunner`` — the multi-rank host of the surrogate step contract.

This couples the two halves of the paper's architecture that previously ran
only in isolation: the distributed FDPS pipeline (domain decomposition,
particle exchange, LET-based gravity — :mod:`repro.fdps.distributed`) and
the surrogate inference service (:mod:`repro.serve`).  One
:class:`CoupledRunner` is ``n_ranks`` simulated main ranks plus ``n_pool``
shared pool ranks on two ledgers:

* the *driver communicator* (``DistributedGravity.comm``) carries domain
  migration (``exchange_particles``), LET traffic, and the new cross-rank
  SN-region ghosts (``region_ghost``);
* the *pool communicator* carries every rank's SN-region round trips under
  the ``pool_p2p`` label, with pool ranks placed after all main ranks
  (``pool_rank_base = n_ranks``).

Bit-identity with the single-rank :class:`~repro.core.integrator
.SurrogateLeapfrog` is a hard contract, kept by construction:

* the canonical particle state stays one global pid-sorted
  :class:`~repro.fdps.particles.ParticleSet`; per-rank local sets are
  materialized views (copies) used for the communication phases, so the
  exchanged bytes are real while the physics state never round-trips
  through the wire format;
* SN events are dispatched in **global index order** (= pid order, exactly
  the single-rank order) through each owner rank's
  :class:`~repro.core.pool.PoolManager`; all managers share one
  :class:`~repro.serve.SurrogateServer` and one
  :class:`~repro.core.pool.PoolOccupancy`, so event ids, pool-node
  bookings, return steps and per-event Gibbs seeds
  (``event_rng(base_seed, star_pid, dispatch_step)`` — rank-free) are
  identical;
* a region whose cube crosses the owner's domain box is completed with
  ghost particles pulled through
  :meth:`~repro.fdps.distributed.DistributedGravity.exchange_region_ghosts`
  and pid-sorted, so its content *and order* match a single-rank
  extraction from the global set;
* received predictions are merged across ranks and applied in event-id
  order — the single-rank application order.

``force_mode="global"`` (default) evaluates forces on the global
:class:`~repro.accel.ForceEngine` — bit-identical by construction, with
every communication phase still paid for on the ledgers.
``force_mode="distributed"`` runs gravity through the full per-rank
tree + LET pipeline instead (tree-code-accurate, not bitwise-equal): the
mode the coupled scaling benchmark measures.
"""

from __future__ import annotations

import numpy as np

from repro.core.integrator import BaseIntegrator, IntegratorConfig
from repro.core.pool import PoolManager, PoolOccupancy
from repro.core.runner.step import SurrogateStepLoop
from repro.fdps.comm import SimComm
from repro.fdps.distributed import DistributedGravity
from repro.fdps.particles import ParticleSet, ParticleType
from repro.physics.cooling import CoolingModel
from repro.physics.star_formation import StarFormationModel
from repro.physics.stellar import exploding_between
from repro.serve import OverflowPolicy, SurrogateServer
from repro.surrogate.voxelize import extract_region
from repro.util.timers import TimerRegistry


class CoupledRunner(SurrogateStepLoop, BaseIntegrator):
    """Multi-rank surrogate-coupled integration over one shared service.

    Parameters
    ----------
    ps : the global particle set (must be pid-sorted with unique pids —
        the invariant that makes global index order, pid order, and the
        single-rank dispatch order one and the same thing).
    server : the shared :class:`~repro.serve.SurrogateServer`; every
        rank's :class:`~repro.core.pool.PoolManager` is a client of it.
    n_ranks : number of simulated main ranks.
    use_torus : route the driver communicator's collectives through the
        3-phase 3D torus alltoallv.
    force_mode : ``"global"`` (bit-identical, default) or
        ``"distributed"`` (per-rank trees + LET exchange for gravity).
    """

    def __init__(
        self,
        ps: ParticleSet,
        server: SurrogateServer,
        n_ranks: int,
        config: IntegratorConfig | None = None,
        cooling: CoolingModel | None = None,
        star_formation: StarFormationModel | None = None,
        tracer=None,
        use_torus: bool = False,
        force_mode: str = "global",
        overflow_policy: OverflowPolicy | str = OverflowPolicy.QUEUE,
        horizon: float | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one main rank")
        if force_mode not in ("global", "distributed"):
            raise ValueError(f"unknown force_mode {force_mode!r}")
        if len(ps) and np.any(np.diff(ps.pid) <= 0):
            raise ValueError(
                "CoupledRunner requires a pid-sorted particle set with "
                "unique pids (global index order must equal pid order)"
            )
        super().__init__(ps, config, cooling, star_formation, tracer=tracer)
        cfg = self.cfg
        self.n_ranks = int(n_ranks)
        self.force_mode = force_mode
        self.server = server
        self.driver = DistributedGravity(
            n_ranks=self.n_ranks,
            theta=cfg.theta,
            n_g=cfg.n_g,
            leaf_size=cfg.leaf_size,
            use_torus=use_torus,
            mixed_precision=cfg.mixed_precision,
            backend=cfg.backend,
            tracer=self.tracer,
        )
        #: Pool traffic rides its own world: ``n_ranks`` mains + the pool.
        self.pool_comm = SimComm(self.n_ranks + cfg.n_pool, tracer=self.tracer)
        self.occupancy = PoolOccupancy(n_pool=cfg.n_pool)
        self.pools = [
            PoolManager(
                n_pool=cfg.n_pool,
                latency_steps=cfg.latency_steps,
                seed=cfg.seed,
                comm=self.pool_comm,
                main_rank=r,
                server=server,
                overflow_policy=overflow_policy,
                horizon=horizon,
                pool_rank_base=self.n_ranks,
                client_id=r,
                occupancy=self.occupancy,
            )
            for r in range(self.n_ranks)
        ]
        self.decomp, self.owner = self.driver.decompose(ps)

    # -------------------------------------------------------------- locals
    def _locals(self) -> list[ParticleSet]:
        """Per-rank copies of the canonical set (current ownership)."""
        return [self.ps.select(self.owner == r) for r in range(self.n_ranks)]

    # ---------------------------------------------------------------- hooks
    def identify_sne(self, dt: float) -> np.ndarray:
        """Step (1): global indices of stars exploding in [t, t + dt)."""
        ps = self.ps
        stars = np.flatnonzero(ps.where_type(ParticleType.STAR))
        local = exploding_between(ps.tsn[stars], -np.inf, self.time + dt)
        return stars[local]

    def send_sne(self, exploding: np.ndarray) -> None:
        """Step (2): complete each owner's region with cross-rank ghosts,
        then dispatch in global index order through the owner's pool client.

        The ghost exchange runs first (one collective for all of this
        step's events); the dispatch loop then walks events in ascending
        global index — pid order, i.e. the single-rank dispatch order — so
        the shared server assigns the same event ids and the shared
        occupancy books the same pool nodes as a single-rank run.
        """
        if len(exploding) == 0:
            return
        ps, cfg = self.ps, self.cfg
        owners = [int(self.owner[si]) for si in exploding]
        centers = [ps.pos[si].copy() for si in exploding]
        locals_ = self._locals()
        ghosts = self.driver.exchange_region_ghosts(
            locals_, list(zip(owners, centers, strict=True)), cfg.region_side
        )
        for k, si in enumerate(exploding):
            r = owners[k]
            region, _idx = extract_region(
                locals_[r],
                centers[k],
                cfg.region_side,
                domain=self.decomp.domain_box(r),
                ghosts=ghosts[k],
            )
            self.pools[r].dispatch(
                region, centers[k], int(ps.pid[si]), float(ps.tsn[si]),
                self.step_count,
            )
            ps.tsn[si] = np.inf  # fires exactly once
            self.n_sn_events += 1

    def flush_pools(self) -> None:
        # Server ticks are idempotent within a step; every client flushes so
        # the first one (whichever rank dispatched) ships the due batches.
        for pool in self.pools:
            pool.flush(self.step_count)

    def receive_sne(self) -> None:
        """Step (4): gather every rank's due predictions, apply in event-id
        order — the order the single-rank server would have delivered."""
        pairs: list = []
        for pool in self.pools:
            pairs.extend(pool.collect(self.step_count))
        pairs.sort(key=lambda ep: ep[0].event_id)
        n_replaced = 0
        for _event, predicted in pairs:
            n_replaced += self.ps.replace_by_pid(predicted)
        if n_replaced:
            self.engine.notify_positions_changed()

    def redistribute(self, dt: float) -> None:
        """Step (5): genuine re-decomposition and particle migration.

        The decomposition is refit on the (post-drift) global positions and
        the per-rank local sets migrate their emigrants through the driver's
        alltoallv — full packed particles, charged to the
        ``exchange_particles`` ledger exactly as a real multi-rank run pays
        them.  The canonical state never leaves ``self.ps``; only the owner
        map changes.
        """
        locals_ = self._locals()
        weights = (
            self.engine.work_weights(self.ps)
            if self.force_mode == "global" and self.forces_ready
            else None
        )
        self.decomp, self.owner = self.driver.decompose(self.ps, weights=weights)
        self.driver.exchange_particles(locals_, self.decomp)

    # --------------------------------------------------------------- forces
    def compute_forces(self, label: str = "1st") -> None:
        if self.force_mode == "global":
            super().compute_forces(label)
            return
        # Distributed gravity: per-rank cached trees + LET imports.  The
        # local sets are fresh copies, so the per-rank spatial caches from
        # the previous pass never match — invalidate rather than risk reuse.
        for index in self.driver.indices:
            index.invalidate_all()
        locals_ = self._locals()
        if self.cfg.self_gravity:
            accs = self.driver.forces(locals_, self.decomp, counter=self.counter)
            pid = np.concatenate([loc.pid for loc in locals_])
            acc = np.concatenate(accs) if len(pid) else np.zeros((0, 3))
            order = np.argsort(pid, kind="stable")
            # acc[order] is pid-sorted == row order of the canonical set.
            self._grav_acc = acc[order]
        else:
            self._grav_acc = np.zeros((len(self.ps), 3))
        self._hydro_acc, self._du_dt, self._vsig = self._hydro(label)
        self._first_forces_done = True

    # ------------------------------------------------------------ membership
    def _replace_particle_set(self, new_ps: ParticleSet) -> None:
        """Star formation changed the membership: remap the owner array.

        Surviving particles keep their owner (found by pid in the old,
        sorted, pid array); newly formed stars are assigned by position
        against the current decomposition.
        """
        old_pid = self.ps.pid
        super()._replace_particle_set(new_ps)
        new_pid = new_ps.pid
        slot = np.searchsorted(old_pid, new_pid)
        slot_c = np.minimum(slot, max(len(old_pid) - 1, 0))
        survived = (
            (slot < len(old_pid)) & (old_pid[slot_c] == new_pid)
            if len(old_pid)
            else np.zeros(len(new_pid), dtype=bool)
        )
        owner = np.empty(len(new_pid), dtype=np.int64)
        owner[survived] = self.owner[slot[survived]]
        fresh = ~survived
        if fresh.any():
            owner[fresh] = self.decomp.assign(new_ps.pos[fresh])
        self.owner = owner

    # ------------------------------------------------------------ accounting
    def comm_stats(self) -> dict:
        """Merged byte ledger: driver labels + the shared pool traffic.

        The label sets are disjoint by construction (``pool_p2p`` lives on
        the pool communicator; migration/LET/ghost labels on the driver's).
        """
        merged = dict(self.driver.comm.stats)
        merged.update(self.pool_comm.stats)
        return merged

    def distributed_timings(self) -> dict[str, float]:
        """Slowest-rank merge of the driver's per-rank phase timers."""
        return TimerRegistry.slowest(self.driver.timers)

    def pool_summary(self) -> dict:
        events = [e for pool in self.pools for e in pool.events]
        returned = sum(1 for e in events if e.returned)
        return {
            "n_events": len(events),
            "n_returned": returned,
            "n_in_flight": self.server.n_outstanding,
            "n_overflow": self.server.metrics.n_overflow,
            "total_region_particles": sum(e.n_region_particles for e in events),
            "total_region_bytes": sum(e.region_bytes for e in events),
            "per_rank_events": [len(pool.events) for pool in self.pools],
            "service": self.server.metrics_dict(),
        }

    def diagnostics(self) -> dict:
        out = super().diagnostics()
        out["n_ranks"] = self.n_ranks
        out["force_mode"] = self.force_mode
        out["rank_counts"] = np.bincount(
            self.owner, minlength=self.n_ranks
        ).tolist()
        return out

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the shared service once (all pools are its clients)."""
        self.server.close()

    def __enter__(self) -> "CoupledRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
