"""``repro.core.runner`` — the run-orchestration layer.

One step contract, two hosts:

* :mod:`repro.core.runner.step` owns the leapfrog primitives
  (:func:`leapfrog_kick` / :func:`energy_kick` / :func:`leapfrog_drift`),
  the eight-phase surrogate driver :func:`run_surrogate_step`, and the
  :class:`SurrogateStepLoop` run-control mixin.  Drift/kick arithmetic,
  pool flush/collect placement, and the Table-3 timer brackets live there
  and nowhere else — both ``repro.core.integrator.SurrogateLeapfrog`` and
  ``repro.fdps.distributed.DistributedGravity.step`` call these primitives.
* :mod:`repro.core.runner.coupled` provides :class:`CoupledRunner`, the
  multi-rank host: distributed domain decomposition and particle-exchange
  bytes, cross-rank SN-region ghosts (``region_ghost`` ledger label), and
  per-rank :class:`~repro.core.pool.PoolManager` clients sharing one
  :class:`~repro.serve.SurrogateServer` — bit-identical to the single-rank
  integrator on the same particle set.

``CoupledRunner`` is re-exported lazily: it imports the integrator module
(which imports this package for the step contract), so an eager import here
would be circular.
"""

from __future__ import annotations

from repro.core.runner.step import (
    SurrogateStepLoop,
    energy_kick,
    leapfrog_drift,
    leapfrog_kick,
    run_surrogate_step,
)

__all__ = [
    "CoupledRunner",
    "SurrogateStepLoop",
    "energy_kick",
    "leapfrog_drift",
    "leapfrog_kick",
    "run_surrogate_step",
]


def __getattr__(name: str):
    if name == "CoupledRunner":
        from repro.core.runner.coupled import CoupledRunner

        return CoupledRunner
    raise AttributeError(name)
