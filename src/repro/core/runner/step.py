"""The shared step contract: primitives + the eight-phase surrogate driver.

Before this layer existed the leapfrog arithmetic and the surrogate loop's
phase structure were inlined twice — once in
``repro.core.integrator.SurrogateLeapfrog`` and once in
``repro.fdps.distributed.DistributedGravity.step`` — a silent-correctness
hazard: a kick reordered in one copy but not the other breaks the
bit-identity contract between the single-rank and distributed paths without
any test naming the divergence.  Now exactly one module owns both:

* :func:`leapfrog_kick` / :func:`energy_kick` / :func:`leapfrog_drift` are
  the in-place update primitives.  They take the *pre-multiplied* interval
  (callers pass ``0.5 * dt`` for a half kick), which keeps the float
  arithmetic literally identical to the historical inline form
  ``vel += 0.5 * dt * acc`` — Python's left-associativity already grouped
  it as ``(0.5 * dt) * acc``.
* :func:`run_surrogate_step` is the paper's Sec. 3.2 eight-step loop as a
  driver over a host object (the *step contract* below).  The timer
  brackets — and therefore the Table-3 breakdown rows and the traced
  spans — live here and only here; single-rank and coupled hosts cannot
  drift apart in labels or phase order.
* :class:`SurrogateStepLoop` supplies ``step``/``run``/``run_until`` (the
  umbrella ``step`` span included) to any host.

The step contract
-----------------
A host provides: ``cfg`` (an ``IntegratorConfig``), ``timers`` (a
:class:`repro.util.timers.TimerRegistry`), ``tracer``, ``time`` /
``step_count`` (advanced by the driver), ``forces_ready`` and
``compute_forces(label)``, plus the phase hooks ``identify_sne(dt)``,
``send_sne(exploding)``, ``flush_pools()``, ``kick(dt)``, ``drift(dt)``,
``receive_sne()``, ``redistribute(dt)``, ``apply_star_formation(dt)``,
``apply_cooling(dt)`` and ``refresh_hydro()``.  ``BaseIntegrator``
implements the physics half once; ``SurrogateLeapfrog`` (single rank) and
``CoupledRunner`` (multi rank) differ only in how they identify/ship/collect
SN regions and how they decompose the domain.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SurrogateStepLoop",
    "energy_kick",
    "leapfrog_drift",
    "leapfrog_kick",
    "run_surrogate_step",
]

#: Internal-energy floor applied by every kick (the historical inline value).
U_FLOOR = 1e-12


# ------------------------------------------------------------- primitives
def leapfrog_kick(vel: np.ndarray, acc: np.ndarray, dt: float) -> None:
    """In-place velocity kick over ``dt`` (pass ``0.5 * dt`` for a half kick)."""
    vel += dt * acc


def energy_kick(
    u: np.ndarray, du_dt: np.ndarray, dt: float, floor: float = U_FLOOR
) -> None:
    """In-place internal-energy kick over ``dt``, floored at ``floor``."""
    u[:] = np.maximum(u + dt * du_dt, floor)


def leapfrog_drift(pos: np.ndarray, vel: np.ndarray, dt: float) -> None:
    """In-place position drift over ``dt`` (spatial caches are now stale —
    the caller owns the invalidation, e.g. ``SpatialIndex.invalidate_positions``)."""
    pos += dt * vel


# ----------------------------------------------------------------- driver
def run_surrogate_step(host) -> None:
    """One fixed-dt surrogate-coupled step (the Sec. 3.2 eight-step loop).

    Phase order, timer labels, pool flush/collect placement and the
    floating-point grouping of the kicks are owned here; hosts only supply
    the phase bodies.  The labels match the Fig. 6/Table 3 categories.
    """
    cfg = host.cfg
    dt = cfg.dt

    # (1) identify SNe in [t, t + dt).  The window is open below so an
    # *overdue* tsn also fires (a finite past tsn can only mean a checkpoint
    # restore re-scheduled an SN whose prediction was in flight at save time).
    with host.timers.measure("Identify_SNe"):
        exploding = host.identify_sne(dt)

    # (2) ship each SN region to a pool node, then flush due batches so
    # inference runs overlapped with (3) instead of landing on the collect.
    with host.timers.measure("Send_SNe"):
        host.send_sne(exploding)
        host.flush_pools()

    # (3) KDK without feedback energy.
    if not host.forces_ready:
        host.compute_forces("1st")
    with host.timers.measure("Integration"):
        host.kick(0.5 * dt)
        host.drift(dt)
    host.compute_forces("1st")
    with host.timers.measure("Final_kick"):
        host.kick(0.5 * dt)

    # (4) receive due predictions, replace by particle ID.
    with host.timers.measure("Receive_SNe"):
        host.receive_sne()

    # (5) domain decomposition / particle exchange.
    host.redistribute(dt)

    # (6) star formation and cooling.
    host.apply_star_formation(dt)
    host.apply_cooling(dt)

    # (7) recompute hydro after the internal-energy changes.
    host.refresh_hydro()

    # (8) advance the global clock; repeat.
    host.time += dt
    host.step_count += 1


class SurrogateStepLoop:
    """Run-control mixin: the umbrella span + ``run``/``run_until``.

    Hosts mix this in next to their physics base class; ``step`` drives
    :func:`run_surrogate_step` against ``self``.
    """

    def step(self) -> None:
        with self.tracer.span("step", step=self.step_count):
            run_surrogate_step(self)

    def run(self, n_steps: int) -> None:
        for _ in range(n_steps):
            self.step()

    def run_until(self, t_end: float, max_steps: int = 10_000_000) -> None:
        while self.time < t_end and self.step_count < max_steps:
            self.step()
