"""Supernova event records.

An :class:`SNEvent` tracks one explosion through the surrogate pipeline:
detection on the main nodes, dispatch of its (60 pc)^3 region to a pool
node, and the step at which the prediction is due back (50 global steps
later by default — the pool-count / latency relationship of Sec. 3.2:
"If dt_global = 2,000 yr, for example, we adopt 50 pool nodes").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SNEvent:
    """One supernova travelling through the pool pipeline."""

    star_pid: int               # exploding star's particle ID
    center: np.ndarray          # explosion position [pc]
    time: float                 # explosion time [Myr]
    dispatch_step: int          # global step at which the region was sent
    return_step: int            # global step at which the prediction lands
    pool_rank: int              # pool node running the prediction (-1: inline)
    n_region_particles: int     # gas particles shipped
    region_bytes: int = 0       # request wire bytes (header + packed FIELDS)
    returned: bool = False
    #: Service-assigned request id (matches responses across the transport).
    event_id: int = -1
    #: Base seed of the per-event Gibbs generator (with ``star_pid`` and
    #: ``dispatch_step``) — makes the prediction order-independent.
    seed: int = 0
    #: How the dispatch was served: "pooled", or an overflow outcome
    #: ("queued", "blocked", "spilled", "oracle").
    handling: str = "pooled"

    @property
    def in_flight_steps(self) -> int:
        return self.return_step - self.dispatch_step
