"""The conventional baseline: adaptive CFL timestep + direct SN feedback.

This is what the paper calls "conventional simulation" (Sec. 5.3): no
surrogate, every SN injects 1e51 erg thermally, and the shared timestep
follows the CFL condition of the hottest gas — which collapses to ~200 yr
after an explosion at star-by-star resolution ("10x smaller than that
adopted for the method with ML").  The recorded ``dt_history`` is the raw
material for the Sec. 5.3 timestep-ratio benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.integrator import BaseIntegrator, IntegratorConfig
from repro.fdps.particles import ParticleSet, ParticleType
from repro.physics.cooling import CoolingModel
from repro.physics.feedback import SNFeedback
from repro.physics.star_formation import StarFormationModel
from repro.physics.stellar import exploding_between


class ConventionalIntegrator(BaseIntegrator):
    """Adaptive-global-timestep leapfrog with direct thermal feedback."""

    def __init__(
        self,
        ps: ParticleSet,
        config: IntegratorConfig | None = None,
        cooling: CoolingModel | None = None,
        star_formation: StarFormationModel | None = None,
        feedback: SNFeedback | None = None,
        dt_max: float = 2.0e-3,
        dt_min: float = 1.0e-7,
        courant: float | None = None,
        self_gravity: bool | None = None,
        enable_cooling: bool | None = None,
        enable_star_formation: bool | None = None,
    ) -> None:
        cfg = config or IntegratorConfig()
        if courant is not None:
            cfg.courant = courant
        if self_gravity is not None:
            cfg.self_gravity = self_gravity
        if enable_cooling is not None:
            cfg.enable_cooling = enable_cooling
        if enable_star_formation is not None:
            cfg.enable_star_formation = enable_star_formation
        super().__init__(ps, cfg, cooling, star_formation)
        self.feedback = feedback or SNFeedback()
        self.dt_max = dt_max
        self.dt_min = dt_min
        self.dt_history: list[float] = []

    def current_timestep(self) -> float:
        """Shared adaptive step: min CFL over the gas, clamped."""
        if not self._first_forces_done:
            self.compute_forces("1st")
        dt = self.gas_cfl_timestep()
        return float(np.clip(dt, self.dt_min, self.dt_max))

    def step(self) -> float:
        """One adaptive step; returns the dt actually taken."""
        ps = self.ps
        if not self._first_forces_done:
            self.compute_forces("1st")
        dt = self.current_timestep()

        # Direct feedback for SNe that explode within this step — this is
        # exactly the energy injection the surrogate scheme bypasses; the
        # very next ``current_timestep`` call will feel the hot bubble.
        stars = np.flatnonzero(ps.where_type(ParticleType.STAR))
        if stars.size:
            local = exploding_between(ps.tsn[stars], self.time, self.time + dt)
            with self.timers.measure("Feedback_and_Cooling"):
                for si in stars[local]:
                    self.feedback.inject(ps, ps.pos[si])
                    ps.tsn[si] = np.inf
                    self.n_sn_events += 1

        with self.timers.measure("Integration"):
            self.kick(0.5 * dt)
            self.drift(dt)
        self.compute_forces("1st")
        with self.timers.measure("Final_kick"):
            self.kick(0.5 * dt)

        self.apply_star_formation(dt)
        self.apply_cooling(dt)

        self.time += dt
        self.step_count += 1
        self.dt_history.append(dt)
        return dt

    def run(self, n_steps: int) -> None:
        for _ in range(n_steps):
            self.step()

    def run_until(self, t_end: float, max_steps: int = 10_000_000) -> int:
        """Advance to t_end; returns the number of steps taken."""
        start = self.step_count
        while self.time < t_end and self.step_count - start < max_steps:
            self.step()
        return self.step_count - start
