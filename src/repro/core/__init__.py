"""The paper's primary contribution: surrogate-coupled galaxy integration.

* :mod:`repro.core.events` — SN event records and region bookkeeping;
* :mod:`repro.core.pool` — the pool-node manager: communicator split,
  round-robin dispatch of (60 pc)^3 SN regions, the 50-step return latency,
  and ID-based particle replacement (Fig. 3);
* :mod:`repro.core.runner` — the run-orchestration layer: the shared step
  contract (drift/kick primitives, the eight-phase driver, tracing) and
  ``CoupledRunner``, the multi-rank host that couples distributed gravity
  with one shared surrogate service;
* :mod:`repro.core.integrator` — ``SurrogateLeapfrog``, the single-rank
  host of the fixed-global-timestep loop of Sec. 3.2;
* :mod:`repro.core.conventional` — ``ConventionalIntegrator``, the adaptive
  CFL-timestep baseline with direct thermal feedback (what the paper calls
  "conventional simulation" in Sec. 5.3);
* :mod:`repro.core.simulation` — ``GalaxySimulation``, the public facade.
"""

from repro.core.events import SNEvent
from repro.core.pool import PoolManager, PoolOccupancy
from repro.core.integrator import SurrogateLeapfrog
from repro.core.conventional import ConventionalIntegrator
from repro.core.simulation import GalaxySimulation

__all__ = [
    "SNEvent",
    "PoolManager",
    "PoolOccupancy",
    "SurrogateLeapfrog",
    "ConventionalIntegrator",
    "CoupledRunner",
    "GalaxySimulation",
]


def __getattr__(name: str):
    # Lazy: CoupledRunner's module imports repro.fdps.distributed, which in
    # turn imports the step primitives from repro.core.runner — an eager
    # import here would re-enter this package mid-initialization.
    if name == "CoupledRunner":
        from repro.core.runner.coupled import CoupledRunner

        return CoupledRunner
    raise AttributeError(name)
