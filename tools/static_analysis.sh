#!/usr/bin/env bash
# Static-analysis entry point — the same three gates the CI static-analysis
# job runs, for local pre-commit use:
#
#   1. ruff        style + bugbear/numpy/ruff correctness rules (pyproject)
#   2. repro.lint  repo-invariant checker (determinism, ledger labels,
#                  import gating, backend purity, hot-path hygiene, shm
#                  lease pairing, wire symmetry, rng plumbing,
#                  silent-except); see the repro.lint package docstring
#                  for the rule catalog
#   3. mypy        strictly-typed serialization/backend seam (serve.wire,
#                  serve.shm, accel.backends.base; config in pyproject)
#
# ruff/mypy are optional locally (skipped with a note when not installed);
# the invariant checker has no dependencies beyond the repo itself and
# always runs.
set -u
cd "$(dirname "$0")/.."

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff"
    ruff check src tests benchmarks examples || status=1
else
    echo "== ruff: not installed, skipping (CI runs it)"
fi

echo "== repro.lint"
PYTHONPATH=src python -m repro.lint src || status=1

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy"
    mypy || status=1
else
    echo "== mypy: not installed, skipping (CI runs it)"
fi

exit $status
